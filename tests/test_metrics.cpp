// Metric definitions (Eq. 1 productivity, Eq. 2 efficiency) on
// hand-constructed task records.
#include <gtest/gtest.h>

#include "mr/metrics.hpp"

namespace flexmr::mr {
namespace {

TaskRecord map_task(TaskId id, NodeId node, SimTime dispatch,
                    SimTime compute, SimTime end, MiB input,
                    std::uint32_t bus,
                    TaskStatus status = TaskStatus::kCompleted) {
  TaskRecord rec;
  rec.id = id;
  rec.node = node;
  rec.kind = TaskKind::kMap;
  rec.status = status;
  rec.dispatch_time = dispatch;
  rec.compute_start = compute;
  rec.end_time = end;
  rec.input_mib = input;
  rec.num_bus = bus;
  return rec;
}

TEST(TaskRecord, ProductivityEq1) {
  const auto rec = map_task(0, 0, 10.0, 12.0, 20.0, 64.0, 8);
  EXPECT_DOUBLE_EQ(rec.total_runtime(), 10.0);
  EXPECT_DOUBLE_EQ(rec.effective_runtime(), 8.0);
  EXPECT_DOUBLE_EQ(rec.productivity(), 0.8);
}

TEST(TaskRecord, KilledBeforeComputeHasZeroEffective) {
  auto rec = map_task(0, 0, 10.0, 0.0, 11.0, 0.0, 0, TaskStatus::kKilled);
  EXPECT_DOUBLE_EQ(rec.effective_runtime(), 0.0);
  EXPECT_DOUBLE_EQ(rec.productivity(), 0.0);
  EXPECT_FALSE(rec.credited());
}

TEST(JobResult, EfficiencyEq2) {
  JobResult result;
  result.total_slots = 4;
  result.map_phase_start = 0.0;
  result.map_phase_end = 10.0;
  // Four tasks, each 10s total runtime → serial = 40 = phase × slots → 1.0.
  for (TaskId id = 0; id < 4; ++id) {
    result.tasks.push_back(map_task(id, id, 0.0, 2.0, 10.0, 64.0, 8));
  }
  EXPECT_DOUBLE_EQ(result.map_serial_runtime(), 40.0);
  EXPECT_DOUBLE_EQ(result.efficiency(), 1.0);
}

TEST(JobResult, KilledTasksExcludedFromSerialRuntime) {
  JobResult result;
  result.total_slots = 2;
  result.map_phase_start = 0.0;
  result.map_phase_end = 10.0;
  result.tasks.push_back(map_task(0, 0, 0.0, 2.0, 10.0, 64.0, 8));
  result.tasks.push_back(
      map_task(1, 1, 0.0, 2.0, 8.0, 30.0, 0, TaskStatus::kKilled));
  EXPECT_DOUBLE_EQ(result.map_serial_runtime(), 10.0);
  EXPECT_DOUBLE_EQ(result.efficiency(), 0.5);
  EXPECT_DOUBLE_EQ(result.wasted_slot_time(), 8.0);
}

TEST(JobResult, PartialCompletedCountsInSerialRuntime) {
  JobResult result;
  result.total_slots = 1;
  result.map_phase_start = 0.0;
  result.map_phase_end = 10.0;
  result.tasks.push_back(
      map_task(0, 0, 0.0, 2.0, 6.0, 32.0, 4, TaskStatus::kPartialCompleted));
  EXPECT_DOUBLE_EQ(result.map_serial_runtime(), 6.0);
  EXPECT_TRUE(result.tasks[0].credited());
}

TEST(JobResult, ReduceTasksDoNotAffectMapMetrics) {
  JobResult result;
  result.total_slots = 1;
  result.map_phase_start = 0.0;
  result.map_phase_end = 5.0;
  result.tasks.push_back(map_task(0, 0, 0.0, 1.0, 5.0, 64.0, 8));
  TaskRecord reduce;
  reduce.kind = TaskKind::kReduce;
  reduce.dispatch_time = 5.0;
  reduce.compute_start = 7.0;
  reduce.end_time = 30.0;
  result.tasks.push_back(reduce);
  EXPECT_DOUBLE_EQ(result.map_serial_runtime(), 5.0);
  EXPECT_DOUBLE_EQ(result.efficiency(), 1.0);
  EXPECT_EQ(result.map_runtimes().count(), 1u);
}

TEST(JobResult, MeanProductivityOverCompletedMapsOnly) {
  JobResult result;
  result.tasks.push_back(map_task(0, 0, 0.0, 2.0, 10.0, 64.0, 8));  // 0.8
  result.tasks.push_back(map_task(1, 0, 0.0, 4.0, 10.0, 64.0, 8));  // 0.6
  result.tasks.push_back(
      map_task(2, 0, 0.0, 2.0, 10.0, 64.0, 0, TaskStatus::kKilled));
  EXPECT_NEAR(result.mean_map_productivity(), 0.7, 1e-12);
}

TEST(JobResult, Counters) {
  JobResult result;
  result.tasks.push_back(map_task(0, 0, 0.0, 1.0, 2.0, 8.0, 1));
  result.tasks.push_back(
      map_task(1, 0, 0.0, 1.0, 2.0, 8.0, 0, TaskStatus::kKilled));
  EXPECT_EQ(result.count(TaskKind::kMap, TaskStatus::kCompleted), 1u);
  EXPECT_EQ(result.count(TaskKind::kMap, TaskStatus::kKilled), 1u);
  EXPECT_EQ(result.map_tasks_launched(), 2u);
}

TEST(JobResult, EmptyJobHasZeroEfficiency) {
  JobResult result;
  EXPECT_DOUBLE_EQ(result.efficiency(), 0.0);
}

}  // namespace
}  // namespace flexmr::mr
