// TextTable renderer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/table.hpp"

namespace flexmr {
namespace {

TEST(TextTable, RendersHeaderSeparatorAndRows) {
  TextTable table({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string out = table.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);  // hdr+sep+2 rows
}

TEST(TextTable, ColumnsAlign) {
  TextTable table({"x", "y"});
  table.add_row({"longvalue", "1"});
  const std::string out = table.str();
  // Header cell is padded to the width of the longest cell + 2.
  EXPECT_NE(out.find("x         "), std::string::npos);
}

TEST(TextTable, WrongRowWidthThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvariantError);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), InvariantError);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), InvariantError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, CsvOutput) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"x"});
  EXPECT_EQ(table.rows(), 1u);
}

}  // namespace
}  // namespace flexmr
