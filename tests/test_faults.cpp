// The fault-injection subsystem: FaultPlan validation, silent crashes with
// heartbeat-expiry detection, node rejoin, transient attempt/launch
// failures with retries, AM blacklisting, max_attempts aborts, and the
// exactly-once invariant under every fault type across all schedulers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/presets.hpp"
#include "mr/result_json.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using faults::FaultEvent;
using faults::FaultEventType;
using faults::FaultPlan;
using faults::NodeCrash;
using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark bench_with(MiB input, double shuffle) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

void check_exactly_once(const mr::JobResult& result,
                        std::size_t total_bus) {
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, total_bus);
}

std::size_t count_events(const mr::JobResult& result, FaultEventType type) {
  return static_cast<std::size_t>(
      std::count_if(result.fault_events.begin(), result.fault_events.end(),
                    [type](const FaultEvent& e) { return e.type == type; }));
}

const FaultEvent* first_event(const mr::JobResult& result,
                              FaultEventType type) {
  for (const auto& e : result.fault_events) {
    if (e.type == type) return &e;
  }
  return nullptr;
}

std::string sweep_param_name(
    const ::testing::TestParamInfo<SchedulerKind>& info) {
  std::string label = workloads::scheduler_label(info.param);
  std::erase_if(label, [](char c) {
    return !std::isalnum(static_cast<unsigned char>(c));
  });
  return label;
}

class FaultSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(FaultSweep, TransientAttemptFailuresAreRetriedExactlyOnce) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.attempt_failure_prob = 0.15;
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 256);
  // The sweep rate makes failures a statistical certainty over ~32 tasks.
  EXPECT_GT(count_events(result, FaultEventType::kAttemptFailure), 0u)
      << workloads::scheduler_label(GetParam());
  EXPECT_GT(result.count(mr::TaskKind::kMap, mr::TaskStatus::kFailed), 0u);
}

TEST_P(FaultSweep, ContainerLaunchFailuresAreRetriedExactlyOnce) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  // Kept moderate: a launch failure charges an attempt to every BU the
  // container bundled, so FlexMap's large elastic tasks approach
  // max_attempts much faster than fixed-size schedulers at high rates.
  config.faults.container_launch_failure_prob = 0.1;
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 256);
  EXPECT_GT(count_events(result, FaultEventType::kLaunchFailure), 0u)
      << workloads::scheduler_label(GetParam());
}

TEST_P(FaultSweep, SilentCrashIsDetectedOnlyAfterLivenessTimeout) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{2, 20.0, std::nullopt, true}};
  const auto result = workloads::run_job(
      cluster, bench_with(4096.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 512);
  const FaultEvent* crash = first_event(result, FaultEventType::kCrash);
  const FaultEvent* detected =
      first_event(result, FaultEventType::kDetected);
  ASSERT_NE(crash, nullptr);
  ASSERT_NE(detected, nullptr);
  EXPECT_DOUBLE_EQ(crash->time, 20.0);
  // The AM cannot learn of the death before a full liveness timeout has
  // elapsed since the node's last heartbeat — that wasted window is the
  // whole point of silent crashes.
  EXPECT_GE(detected->time, 20.0 + config.faults.node_liveness_timeout_s -
                                config.params.heartbeat_period_s - 1e-9);
  EXPECT_GE(detected->time - 20.0, config.faults.node_liveness_timeout_s -
                                       config.params.heartbeat_period_s);
  // Until detection the AM may still dispatch into the dead node's idle
  // slots (that work is doomed) — but nothing CREDITS there after the
  // ground-truth death, and nothing dispatches after detection.
  for (const auto& task : result.tasks) {
    if (task.node != 2) continue;
    if (task.credited()) {
      EXPECT_LE(task.end_time, 20.0 + 1e-9);
    }
    EXPECT_LT(task.dispatch_time, detected->time);
  }
}

TEST_P(FaultSweep, FailureAtTimeZeroStillCompletes) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{0, 0.0, std::nullopt, false}};
  const auto result = workloads::run_job(
      cluster, bench_with(1024.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 128);
  for (const auto& task : result.tasks) {
    EXPECT_NE(task.node, 0u);
  }
}

TEST_P(FaultSweep, EveryNodeFailingAbortsWithDataLoss) {
  // With replication 3 on six nodes the job does not survive long enough
  // for "every node failed": the third crash already wipes all replicas
  // of some unread block, so the run aborts early with a structured
  // DataLossError naming the lost blocks.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    config.faults.crashes.push_back(
        NodeCrash{n, 5.0 + static_cast<SimTime>(n), std::nullopt, false});
  }
  try {
    workloads::run_job(cluster, bench_with(4096.0, 0.25),
                       InputScale::kSmall, GetParam(), config);
    FAIL() << "expected DataLossError";
  } catch (const mr::DataLossError& e) {
    EXPECT_TRUE(e.result().aborted);
    EXPECT_NE(e.result().abort_reason.find("data loss"), std::string::npos)
        << e.result().abort_reason;
    ASSERT_FALSE(e.lost_blocks().empty());
    for (const std::uint32_t block : e.lost_blocks()) {
      EXPECT_NE(e.result().abort_reason.find(std::to_string(block)),
                std::string::npos)
          << "block " << block << " missing from: "
          << e.result().abort_reason;
    }
    EXPECT_EQ(count_events(e.result(), FaultEventType::kAbort), 1u);
    EXPECT_EQ(count_events(e.result(), FaultEventType::kDataLoss),
              e.lost_blocks().size());
    EXPECT_GT(count_events(e.result(), FaultEventType::kReplicaLost), 0u);
    // The abort preempted the remaining crashes.
    const auto crashes = count_events(e.result(), FaultEventType::kCrash);
    EXPECT_GE(crashes, 3u);
    EXPECT_LT(crashes, 6u);
  }
}

TEST_P(FaultSweep, FailureDuringReducePhaseReexecutesLostMaps) {
  // Satellite: a node dying after the shuffle started takes its map output
  // with it — the driver must re-open the map phase, not hang.
  auto probe_cluster = cluster::presets::homogeneous6();
  const auto reference = workloads::run_job(
      probe_cluster, bench_with(1024.0, 1.0), InputScale::kSmall,
      GetParam(), RunConfig{});
  const SimTime fail_at = reference.map_phase_end + 1.0;
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{3, fail_at, std::nullopt, false}};
  const auto result = workloads::run_job(
      cluster, bench_with(1024.0, 1.0), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 128);
  // The dead node's credited maps were un-credited and re-executed.
  EXPECT_GT(result.count(mr::TaskKind::kMap, mr::TaskStatus::kLostOutput),
            0u)
      << workloads::scheduler_label(GetParam());
  EXPECT_EQ(result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            reference.count(mr::TaskKind::kReduce,
                            mr::TaskStatus::kCompleted));
}

TEST_P(FaultSweep, RejoinMidMapPhaseRestoresTheNode) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{1, 10.0, 45.0, false}};
  const auto result = workloads::run_job(
      cluster, bench_with(8192.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 1024);
  ASSERT_EQ(count_events(result, FaultEventType::kRejoin), 1u);
  const FaultEvent* rejoin = first_event(result, FaultEventType::kRejoin);
  EXPECT_DOUBLE_EQ(rejoin->time, 45.0);
  // The node went dark between crash and rejoin, then worked again.
  bool dispatched_after_rejoin = false;
  for (const auto& task : result.tasks) {
    if (task.node != 1) continue;
    EXPECT_TRUE(task.dispatch_time < 10.0 + 1e-9 ||
                task.dispatch_time >= 45.0 - 1e-9);
    if (task.dispatch_time >= 45.0) dispatched_after_rejoin = true;
  }
  EXPECT_TRUE(dispatched_after_rejoin)
      << workloads::scheduler_label(GetParam());
}

TEST_P(FaultSweep, SingleNodeLossAtReplicationThreeSurvives) {
  // Acceptance: with replication 3 a job survives any single permanent
  // node loss, and the NameNode restores the replication factor on the
  // survivors (re-replication events appear in the timeline).
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{2, 20.0, std::nullopt, false}};
  const auto result = workloads::run_job(
      cluster, bench_with(4096.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 512);
  EXPECT_GT(count_events(result, FaultEventType::kReplicaLost), 0u)
      << workloads::scheduler_label(GetParam());
  EXPECT_GT(count_events(result, FaultEventType::kReReplicated), 0u)
      << workloads::scheduler_label(GetParam());
  EXPECT_EQ(count_events(result, FaultEventType::kDataLoss), 0u);
  // Re-replicated copies never land on the dead node.
  for (const auto& e : result.fault_events) {
    if (e.type == FaultEventType::kReReplicated) {
      EXPECT_NE(e.node, 2u);
      EXPECT_NE(e.block, faults::kInvalidBlock);
    }
  }
  const std::string json = mr::job_result_json(result);
  EXPECT_NE(json.find("\"replica-lost\""), std::string::npos);
  EXPECT_NE(json.find("\"re-replicated\""), std::string::npos);
}

TEST_P(FaultSweep, TransientFetchFailuresRetryAndComplete) {
  // Reducers hit transient shuffle-fetch failures, back off, retry, and
  // the job still completes with every BU credited exactly once.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.fetch_failure_prob = 0.1;
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 1.0), InputScale::kSmall, GetParam(),
      config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 256);
  EXPECT_GT(count_events(result, FaultEventType::kFetchFailure), 0u)
      << workloads::scheduler_label(GetParam());
  const std::string json = mr::job_result_json(result);
  EXPECT_NE(json.find("\"fetch-failure\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, FaultSweep,
    ::testing::Values(SchedulerKind::kHadoop, SchedulerKind::kHadoopNoSpec,
                      SchedulerKind::kSkewTune, SchedulerKind::kFlexMap),
    sweep_param_name);

TEST(Faults, RejoinBeforeDetectionStillResyncsState) {
  // The node dies silently and comes back before the liveness timeout
  // expires: the rejoin itself must surface the death (lost in-flight
  // work) before the node is readmitted.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{2, 10.0, 15.0, true}};
  const auto result = workloads::run_job(
      cluster, bench_with(4096.0, 0.25), InputScale::kSmall,
      SchedulerKind::kHadoopNoSpec, config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 512);
  EXPECT_EQ(count_events(result, FaultEventType::kDetected), 1u);
  EXPECT_EQ(count_events(result, FaultEventType::kRejoin), 1u);
}

TEST(Faults, MaxAttemptsExceededAbortsWithStructuredError) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.attempt_failure_prob = 1.0;  // every attempt dies
  try {
    workloads::run_job(cluster, bench_with(512.0, 0.25), InputScale::kSmall,
                       SchedulerKind::kHadoopNoSpec, config);
    FAIL() << "expected JobAbortedError";
  } catch (const mr::JobAbortedError& e) {
    EXPECT_TRUE(e.result().aborted);
    EXPECT_NE(e.result().abort_reason.find("attempts"), std::string::npos)
        << e.result().abort_reason;
    EXPECT_EQ(count_events(e.result(), FaultEventType::kAbort), 1u);
    // The doomed unit was retried exactly max_attempts times.
    const FaultEvent* abort =
        first_event(e.result(), FaultEventType::kAbort);
    ASSERT_NE(abort, nullptr);
    std::uint32_t worst = 0;
    for (const auto& ev : e.result().fault_events) {
      worst = std::max(worst, ev.attempts);
    }
    EXPECT_EQ(worst, config.faults.max_attempts);
  }
}

TEST(Faults, RepeatOffenderNodeGetsBlacklisted) {
  auto cluster = cluster::presets::physical12();
  RunConfig config;
  config.faults.node_attempt_failure_prob = {{0, 1.0}};  // node 0 is toxic
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall,
      SchedulerKind::kHadoopNoSpec, config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 256);
  ASSERT_EQ(count_events(result, FaultEventType::kBlacklist), 1u);
  const FaultEvent* blacklist =
      first_event(result, FaultEventType::kBlacklist);
  EXPECT_EQ(blacklist->node, 0u);
  EXPECT_EQ(blacklist->attempts, config.faults.blacklist_threshold);
  // No dispatches on the blacklisted node once the AM stopped trusting it.
  for (const auto& task : result.tasks) {
    if (task.node == 0) {
      EXPECT_LE(task.dispatch_time, blacklist->time + 1e-9);
    }
  }
}

TEST(Faults, DegradedWindowSlowsTheRunButPreservesCorrectness) {
  auto baseline_cluster = cluster::presets::homogeneous6();
  const auto baseline = workloads::run_job(
      baseline_cluster, bench_with(2048.0, 0.25), InputScale::kSmall,
      SchedulerKind::kHadoopNoSpec, RunConfig{});
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.degradations = {
      faults::DegradedWindow{0, 0.0, 1e6, 0.25}};
  const auto degraded = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall,
      SchedulerKind::kHadoopNoSpec, config);
  EXPECT_FALSE(degraded.aborted);
  check_exactly_once(degraded, 256);
  EXPECT_GT(degraded.jct(), baseline.jct());
}

TEST(Faults, FaultRunsAreDeterministicPerSeed) {
  RunConfig config;
  config.params.seed = 1234;
  config.faults.attempt_failure_prob = 0.1;
  config.faults.container_launch_failure_prob = 0.05;
  config.faults.crashes = {NodeCrash{4, 15.0, 60.0, true}};
  auto cluster_a = cluster::presets::homogeneous6();
  const auto a = workloads::run_job(cluster_a, bench_with(2048.0, 0.5),
                                    InputScale::kSmall,
                                    SchedulerKind::kFlexMap, config);
  auto cluster_b = cluster::presets::homogeneous6();
  const auto b = workloads::run_job(cluster_b, bench_with(2048.0, 0.5),
                                    InputScale::kSmall,
                                    SchedulerKind::kFlexMap, config);
  EXPECT_EQ(mr::job_result_json(a), mr::job_result_json(b));
}

TEST(Faults, EmptyPlanLeavesRunsByteIdentical) {
  RunConfig plain;
  auto cluster_a = cluster::presets::homogeneous6();
  const auto a = workloads::run_job(cluster_a, bench_with(1024.0, 0.25),
                                    InputScale::kSmall,
                                    SchedulerKind::kHadoop, plain);
  RunConfig with_empty_plan;
  with_empty_plan.faults = FaultPlan{};  // still empty()
  auto cluster_b = cluster::presets::homogeneous6();
  const auto b = workloads::run_job(cluster_b, bench_with(1024.0, 0.25),
                                    InputScale::kSmall,
                                    SchedulerKind::kHadoop,
                                    with_empty_plan);
  EXPECT_EQ(mr::job_result_json(a), mr::job_result_json(b));
}

TEST(Faults, ResultJsonCarriesSeedPlanAndTimeline) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.params.seed = 77;
  config.faults.crashes = {NodeCrash{2, 20.0, std::nullopt, true}};
  const auto result = workloads::run_job(
      cluster, bench_with(4096.0, 0.25), InputScale::kSmall,
      SchedulerKind::kHadoop, config);
  EXPECT_EQ(result.seed, 77u);
  const std::string json = mr::job_result_json(result);
  EXPECT_NE(json.find("\"seed\":77"), std::string::npos);
  EXPECT_NE(json.find("\"aborted\":false"), std::string::npos);
  EXPECT_NE(json.find("\"fault_plan\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_events\""), std::string::npos);
  EXPECT_NE(json.find("\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"detected\""), std::string::npos);
}

TEST(Faults, PerNodeProbabilityOverridesClusterWide) {
  FaultPlan plan;
  plan.attempt_failure_prob = 0.1;
  plan.node_attempt_failure_prob = {{3, 0.8}};
  EXPECT_DOUBLE_EQ(plan.attempt_failure_prob_for(0), 0.1);
  EXPECT_DOUBLE_EQ(plan.attempt_failure_prob_for(3), 0.8);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(Faults, CrashWithoutReReplicationStillSurvivesOnRemainingReplicas) {
  // Same single-node loss with the NameNode's re-replication disabled:
  // the job survives on the two remaining replicas, and no re-replicated
  // event appears in the timeline.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{2, 20.0, std::nullopt, false}};
  config.faults.re_replication = false;
  const auto result = workloads::run_job(
      cluster, bench_with(4096.0, 0.25), InputScale::kSmall,
      SchedulerKind::kHadoopNoSpec, config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 512);
  EXPECT_GT(count_events(result, FaultEventType::kReplicaLost), 0u);
  EXPECT_EQ(count_events(result, FaultEventType::kReReplicated), 0u);
}

TEST(Faults, KillingEveryHolderOfUnreadBlockRaisesDataLoss) {
  // Acceptance: killing all replica holders of a block the job has not
  // finished reading aborts with a DataLossError naming the block ids.
  // Nodes 0, 1, 2 together hold every replica of the round-robin blocks
  // that start on node 0; killing them in the first two seconds (before
  // re-replication can copy more than a block or two — disabled here for
  // determinism) guarantees loss.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.re_replication = false;
  config.faults.crashes = {NodeCrash{0, 1.0, std::nullopt, false},
                           NodeCrash{1, 1.5, std::nullopt, false},
                           NodeCrash{2, 2.0, std::nullopt, false}};
  try {
    workloads::run_job(cluster, bench_with(4096.0, 0.25),
                       InputScale::kSmall, SchedulerKind::kHadoopNoSpec,
                       config);
    FAIL() << "expected DataLossError";
  } catch (const mr::DataLossError& e) {
    ASSERT_FALSE(e.lost_blocks().empty());
    EXPECT_EQ(e.lost_blocks(), e.result().lost_blocks);
    EXPECT_NE(e.result().abort_reason.find("data loss"), std::string::npos)
        << e.result().abort_reason;
    for (const std::uint32_t block : e.lost_blocks()) {
      EXPECT_NE(e.result().abort_reason.find(std::to_string(block)),
                std::string::npos);
    }
    EXPECT_EQ(count_events(e.result(), FaultEventType::kDataLoss),
              e.lost_blocks().size());
    // The partial result still carries the tasks and timeline so far.
    EXPECT_FALSE(e.result().tasks.empty());
    const std::string json = mr::job_result_json(e.result());
    EXPECT_NE(json.find("\"lost_blocks\""), std::string::npos);
    EXPECT_NE(json.find("\"data-loss\""), std::string::npos);
  }
}

TEST(Faults, TooManyFetchFailuresReexecuteTheSourceMap) {
  // Hadoop semantics: once a map output accumulates
  // max_fetch_failures_per_map failure reports, the AM declares the
  // output lost and re-executes the map. With the threshold at 1 every
  // fetch failure immediately costs a map re-execution.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.fetch_failure_prob = 0.05;
  config.faults.max_fetch_failures_per_map = 1;
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 1.0), InputScale::kSmall,
      SchedulerKind::kHadoopNoSpec, config);
  EXPECT_FALSE(result.aborted);
  check_exactly_once(result, 256);
  EXPECT_GT(count_events(result, FaultEventType::kFetchFailure), 0u);
  EXPECT_GT(count_events(result, FaultEventType::kMapOutputLost), 0u);
  EXPECT_GT(result.count(mr::TaskKind::kMap, mr::TaskStatus::kLostOutput),
            0u);
  const std::string json = mr::job_result_json(result);
  EXPECT_NE(json.find("\"map-output-lost\""), std::string::npos);
}

TEST(Faults, FetchFailureProbMakesThePlanNonEmpty) {
  FaultPlan plan;
  plan.fetch_failure_prob = 0.05;
  EXPECT_FALSE(plan.empty());
  // Data-plane tuning knobs alone do not make a plan non-empty: with no
  // fault source configured they can never fire.
  FaultPlan tuned;
  tuned.re_replication = false;
  tuned.fetch_retry_backoff_s = 2.0;
  tuned.max_fetch_failures_per_map = 7;
  tuned.re_replication_bandwidth_mibps = 50.0;
  EXPECT_TRUE(tuned.empty());
}

TEST(FaultValidation, RejectsBadDataPlaneKnobs) {
  {
    FaultPlan plan;
    plan.fetch_failure_prob = 1.5;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.fetch_failure_prob = -0.1;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.fetch_retry_backoff_s = 0.0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.max_fetch_failures_per_map = 0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.re_replication_bandwidth_mibps = 0.0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.re_replication_bandwidth_mibps = -25.0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.fetch_failure_prob = 0.2;
    plan.fetch_retry_backoff_s = 0.5;
    plan.max_fetch_failures_per_map = 5;
    plan.re_replication_bandwidth_mibps = 200.0;
    EXPECT_NO_THROW(plan.validate(6));
  }
}

TEST(FaultValidation, RejectsStructurallyBrokenPlans) {
  {
    FaultPlan plan;
    plan.crashes = {NodeCrash{99, 10.0, std::nullopt, true}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // node out of range
  }
  {
    FaultPlan plan;
    plan.crashes = {NodeCrash{1, -5.0, std::nullopt, true}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // negative crash time
  }
  {
    FaultPlan plan;
    plan.crashes = {NodeCrash{1, 10.0, 5.0, true}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // rejoin before crash
  }
  {
    FaultPlan plan;
    plan.crashes = {NodeCrash{1, 10.0, 50.0, true},
                    NodeCrash{1, 30.0, std::nullopt, true}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // overlapping intervals
  }
  {
    FaultPlan plan;
    plan.attempt_failure_prob = 1.5;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.node_attempt_failure_prob = {{2, 0.5}, {2, 0.7}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // duplicate override
  }
  {
    FaultPlan plan;
    plan.degradations = {faults::DegradedWindow{0, 20.0, 10.0, 0.5}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // until <= from
  }
  {
    FaultPlan plan;
    plan.degradations = {faults::DegradedWindow{0, 0.0, 10.0, 0.0}};
    EXPECT_THROW(plan.validate(6), ConfigError);  // factor out of (0, 1]
  }
  {
    FaultPlan plan;
    plan.max_attempts = 0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;  // defaults are valid
    plan.crashes = {NodeCrash{0, 0.0, std::nullopt, true},
                    NodeCrash{5, 100.0, 200.0, false}};
    plan.degradations = {faults::DegradedWindow{3, 5.0, 25.0, 0.5}};
    plan.attempt_failure_prob = 0.2;
    EXPECT_NO_THROW(plan.validate(6));
  }
}

TEST(FaultValidation, LegacyScheduleNodeFailureValidatesItsArguments) {
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  const auto layout = workloads::make_layout(
      workloads::benchmark("WC"), InputScale::kSmall, cluster.num_nodes(),
      64.0, 3, 1);
  auto spec = workloads::to_job_spec(workloads::benchmark("WC"),
                                     InputScale::kSmall);
  const auto scheduler =
      workloads::make_scheduler(SchedulerKind::kHadoopNoSpec);
  mr::JobDriver driver(sim, cluster, layout, spec, mr::SimParams{},
                       *scheduler);
  EXPECT_THROW(driver.schedule_node_failure(cluster.num_nodes(), 10.0),
               ConfigError);
  EXPECT_THROW(driver.schedule_node_failure(0, -1.0), ConfigError);
}

TEST(FaultValidation, DuplicateLegacyNodeFailureRejectedAtStart) {
  // Two permanent failures of the same node merge into the plan and are
  // rejected by its overlapping-crash-interval check when the run starts.
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.node_failures = {{2, 10.0}, {2, 30.0}};
  EXPECT_THROW(workloads::run_job(cluster, bench_with(512.0, 0.25),
                                  InputScale::kSmall,
                                  SchedulerKind::kHadoop, config),
               ConfigError);
}

TEST(FaultValidation, BadPlanSurfacesAtRunStart) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults.crashes = {NodeCrash{17, 10.0, std::nullopt, true}};
  EXPECT_THROW(workloads::run_job(cluster, bench_with(512.0, 0.25),
                                  InputScale::kSmall,
                                  SchedulerKind::kHadoop, config),
               ConfigError);
}

TEST(FaultValidation, RejectsBadAmRecoveryKnobs) {
  {
    FaultPlan plan;
    plan.am_max_attempts = 0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.am_crashes = {-1.0};
    EXPECT_THROW(plan.validate(6), ConfigError);  // negative crash time
  }
  {
    FaultPlan plan;
    plan.am_crash_mttf_s = -60.0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.am_restart_delay_s = -0.5;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.am_snapshot_interval_s = -30.0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;  // a well-formed AM plan passes
    plan.am_crashes = {40.0, 120.0};
    plan.am_crash_mttf_s = 600.0;
    plan.am_max_attempts = 3;
    plan.am_restart_delay_s = 5.0;
    plan.am_snapshot_interval_s = 0.0;  // 0 = never snapshot, legal
    EXPECT_NO_THROW(plan.validate(6));
  }
}

TEST(FaultValidation, HorizonRejectsCrashesBeyondIt) {
  {
    FaultPlan plan;
    plan.am_crashes = {500.0};
    EXPECT_NO_THROW(plan.validate(6));  // no horizon: any future time
    EXPECT_THROW(plan.validate(6, 500.0), ConfigError);  // at the horizon
    EXPECT_THROW(plan.validate(6, 100.0), ConfigError);  // beyond it
    EXPECT_NO_THROW(plan.validate(6, 501.0));
  }
  {
    FaultPlan plan;
    plan.crashes = {NodeCrash{1, 500.0, std::nullopt, true}};
    EXPECT_NO_THROW(plan.validate(6));
    EXPECT_THROW(plan.validate(6, 400.0), ConfigError);
  }
}

TEST(FaultValidation, RejectsBadRecoveryBudgetKnobs) {
  {
    FaultPlan plan;
    plan.node_liveness_timeout_s = -1.0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.blacklist_threshold = 0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.blacklist_ignore_fraction = 1.5;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    FaultPlan plan;
    plan.container_launch_failure_prob = -0.2;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
}

TEST(FaultValidation, AmFaultsMakeThePlanNonEmpty) {
  FaultPlan fixed;
  fixed.am_crashes = {40.0};
  EXPECT_TRUE(fixed.has_am_faults());
  EXPECT_FALSE(fixed.empty());

  FaultPlan mttf;
  mttf.am_crash_mttf_s = 300.0;
  EXPECT_TRUE(mttf.has_am_faults());
  EXPECT_FALSE(mttf.empty());

  // Recovery tuning knobs alone arm nothing: the plan stays empty and the
  // run stays on the fault-free fast path.
  FaultPlan tuned;
  tuned.am_max_attempts = 5;
  tuned.am_restart_delay_s = 30.0;
  tuned.am_snapshot_interval_s = 10.0;
  EXPECT_FALSE(tuned.has_am_faults());
  EXPECT_TRUE(tuned.empty());
}

TEST(FaultValidation, AmFaultsWithoutJournalRejectedAtStart) {
  // Driving an AM-killable plan through a bare JobDriver (no journal, no
  // restart loop) is a configuration error surfaced at start().
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  const auto layout = workloads::make_layout(
      workloads::benchmark("WC"), InputScale::kSmall, cluster.num_nodes(),
      64.0, 3, 1);
  auto spec = workloads::to_job_spec(workloads::benchmark("WC"),
                                     InputScale::kSmall);
  const auto scheduler =
      workloads::make_scheduler(SchedulerKind::kHadoopNoSpec);
  mr::JobDriver driver(sim, cluster, layout, spec, mr::SimParams{},
                       *scheduler);
  faults::FaultPlan plan;
  plan.am_crashes = {40.0};
  driver.install_faults(plan);
  EXPECT_THROW(driver.start(), ConfigError);
}

TEST(Faults, MarkAliveRestoresWithdrawnSlots) {
  auto cluster = cluster::presets::homogeneous6();
  yarn::ResourceManager rm(cluster);
  const auto before = rm.total_slots();
  rm.mark_dead(2);
  EXPECT_EQ(rm.total_slots(), before - cluster.machine(2).slots());
  rm.mark_alive(2);
  EXPECT_FALSE(rm.is_dead(2));
  EXPECT_EQ(rm.total_slots(), before);
  EXPECT_EQ(rm.free_slots(2), cluster.machine(2).slots());
  rm.mark_alive(2);  // idempotent
  EXPECT_EQ(rm.total_slots(), before);
}

}  // namespace
}  // namespace flexmr
