// Golden-output determinism regression for the hot-path optimizations.
//
// The simulator's core property is bit-reproducibility: the event-queue
// slot table, heap compaction, SpeedMonitor extrema caching and the
// heartbeat/offer-loop rewrites must not change a single byte of the
// JobResult JSON for a fixed seed. The golden hashes below were captured
// from the pre-optimization implementation (lazy-cancel unordered_map
// queue, scan-based SpeedMonitor, O(all-tasks) heartbeat scans) on the
// paper's 20-node virtual cluster — bursty interference there keeps
// completion re-estimation (schedule/cancel churn) and speed re-rating in
// the exercised path.
//
// To regenerate after an *intentional* output change, run with
// FLEXMR_REGEN_GOLDEN=1 in the environment: the test prints the current
// hashes and fails, and the constants below must be updated by hand.
// Goldens assume IEEE-754 doubles and one libm (FP results feed the JSON);
// they are tied to the CI/dev toolchain, not to a particular machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/presets.hpp"
#include "mr/result_json.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

struct GoldenCase {
  workloads::SchedulerKind kind;
  MiB block_size;
  const char* label;
  std::uint64_t expected;
};

// All four comparison systems of the paper (Fig. 5/6 configuration).
const GoldenCase kCases[] = {
    {workloads::SchedulerKind::kHadoop, kLargeBlockMiB, "Hadoop-128m",
     0x0a1990820730e5d7ull},
    {workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, "Hadoop-64m",
     0x9f9a7d1d34b8a063ull},
    {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB, "SkewTune-64m",
     0x8975dc6c0ed84393ull},
    {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap",
     0x9884f7fe650b6a4aull},
};

std::string run_case(const GoldenCase& c) {
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.block_size = c.block_size;
  config.params.seed = 1234;
  const auto result =
      workloads::run_job(cluster, workloads::benchmark("WC"),
                         workloads::InputScale::kSmall, c.kind, config);
  return mr::job_result_json(result, cluster);
}

TEST(GoldenDeterminism, JobResultJsonMatchesPreOptimizationGolden) {
  const bool regen = std::getenv("FLEXMR_REGEN_GOLDEN") != nullptr;
  bool all_match = true;
  for (const auto& c : kCases) {
    const std::uint64_t hash = fnv1a(run_case(c));
    if (regen) {
      std::printf("    {workloads::SchedulerKind::k..., ..., \"%s\",\n"
                  "     0x%016llxull},\n",
                  c.label, static_cast<unsigned long long>(hash));
      all_match = false;
      continue;
    }
    EXPECT_EQ(hash, c.expected) << c.label;
    all_match = all_match && hash == c.expected;
  }
  if (regen) {
    FAIL() << "FLEXMR_REGEN_GOLDEN set: hashes printed above; update "
              "kCases and re-run without the env var";
  }
  EXPECT_TRUE(all_match);
}

// Independent of the golden constants: the same seed must give the same
// bytes on a second in-process run (fresh cluster + scheduler instances).
TEST(GoldenDeterminism, RepeatedRunsAreByteIdentical) {
  for (const auto& c : kCases) {
    EXPECT_EQ(run_case(c), run_case(c)) << c.label;
  }
}

}  // namespace
}  // namespace flexmr
