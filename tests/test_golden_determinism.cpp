// Golden-output determinism regression for the hot-path optimizations.
//
// The simulator's core property is bit-reproducibility: the event-queue
// slot table, heap compaction, SpeedMonitor extrema caching and the
// heartbeat/offer-loop rewrites must not change a single byte of the
// JobResult JSON for a fixed seed. The golden hashes (tests/
// golden_cases.hpp, shared with the sharded-engine suite) were captured
// from the pre-optimization implementation (lazy-cancel unordered_map
// queue, scan-based SpeedMonitor, O(all-tasks) heartbeat scans) on the
// paper's 20-node virtual cluster — bursty interference there keeps
// completion re-estimation (schedule/cancel churn) and speed re-rating in
// the exercised path.
//
// To regenerate after an *intentional* output change, run with
// FLEXMR_REGEN_GOLDEN=1 in the environment: the test prints the current
// hashes and fails, and the constants in golden_cases.hpp must be updated
// by hand. Goldens assume IEEE-754 doubles and one libm (FP results feed
// the JSON); they are tied to the CI/dev toolchain, not to a particular
// machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>

#include "obs/session.hpp"
#include "tests/golden_cases.hpp"

namespace flexmr {
namespace {

using golden::fnv1a;
using golden::GoldenCase;
using golden::golden_fault_plan;
using golden::kCases;
using golden::kFaultCases;
using golden::run_case;

void check_goldens(const GoldenCase* cases, std::size_t n,
                   const faults::FaultPlan& plan) {
  const bool regen = std::getenv("FLEXMR_REGEN_GOLDEN") != nullptr;
  bool all_match = true;
  for (std::size_t i = 0; i < n; ++i) {
    const GoldenCase& c = cases[i];
    const std::uint64_t hash = fnv1a(run_case(c, plan));
    if (regen) {
      std::printf("    {workloads::SchedulerKind::k..., ..., \"%s\",\n"
                  "     0x%016llxull},\n",
                  c.label, static_cast<unsigned long long>(hash));
      all_match = false;
      continue;
    }
    EXPECT_EQ(hash, c.expected) << c.label;
    all_match = all_match && hash == c.expected;
  }
  if (regen) {
    FAIL() << "FLEXMR_REGEN_GOLDEN set: hashes printed above; update "
              "the golden cases and re-run without the env var";
  }
  EXPECT_TRUE(all_match);
}

TEST(GoldenDeterminism, JobResultJsonMatchesPreOptimizationGolden) {
  check_goldens(kCases, std::size(kCases), faults::FaultPlan{});
}

TEST(GoldenDeterminism, FaultTimelineMatchesGolden) {
  check_goldens(kFaultCases, std::size(kFaultCases), golden_fault_plan());
}

// The tracer observes, never perturbs: attaching a live TraceSession must
// leave every pinned hash untouched (no RNG draws, no event-queue
// changes, same sim_events_fired/cancelled/queue_peak). Covers both the
// clean and the fault-plan cases.
TEST(GoldenDeterminism, TracingOnLeavesGoldenHashesUnchanged) {
  for (const auto& c : kCases) {
    obs::TraceSession trace;
    EXPECT_EQ(fnv1a(run_case(c, faults::FaultPlan{}, &trace)), c.expected)
        << c.label << " with tracing enabled";
    EXPECT_FALSE(trace.tracer().empty()) << c.label;
    EXPECT_GT(trace.metrics().num_rows(), 0u) << c.label;
  }
  const auto plan = golden_fault_plan();
  for (const auto& c : kFaultCases) {
    obs::TraceSession trace;
    EXPECT_EQ(fnv1a(run_case(c, plan, &trace)), c.expected)
        << c.label << " with tracing enabled";
    EXPECT_GT(trace.metrics().counter_value("fault_events"), 0u) << c.label;
  }
}

// The trace itself is an artifact: two identical traced runs must produce
// byte-identical flexmr.trace.v1 documents.
TEST(GoldenDeterminism, TraceDocumentIsByteStable) {
  const auto plan = golden_fault_plan();
  obs::TraceSession first;
  obs::TraceSession second;
  run_case(kFaultCases[3], plan, &first);
  run_case(kFaultCases[3], plan, &second);
  EXPECT_EQ(first.trace_json(), second.trace_json());
  EXPECT_EQ(first.metrics_csv(), second.metrics_csv());
}

// Independent of the golden constants: the same seed must give the same
// bytes on a second in-process run (fresh cluster + scheduler instances).
TEST(GoldenDeterminism, RepeatedRunsAreByteIdentical) {
  for (const auto& c : kCases) {
    EXPECT_EQ(run_case(c, faults::FaultPlan{}), run_case(c, faults::FaultPlan{}))
        << c.label;
  }
  const auto plan = golden_fault_plan();
  for (const auto& c : kFaultCases) {
    EXPECT_EQ(run_case(c, plan), run_case(c, plan)) << c.label;
  }
}

}  // namespace
}  // namespace flexmr
