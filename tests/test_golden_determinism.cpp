// Golden-output determinism regression for the hot-path optimizations.
//
// The simulator's core property is bit-reproducibility: the event-queue
// slot table, heap compaction, SpeedMonitor extrema caching and the
// heartbeat/offer-loop rewrites must not change a single byte of the
// JobResult JSON for a fixed seed. The golden hashes below were captured
// from the pre-optimization implementation (lazy-cancel unordered_map
// queue, scan-based SpeedMonitor, O(all-tasks) heartbeat scans) on the
// paper's 20-node virtual cluster — bursty interference there keeps
// completion re-estimation (schedule/cancel churn) and speed re-rating in
// the exercised path.
//
// To regenerate after an *intentional* output change, run with
// FLEXMR_REGEN_GOLDEN=1 in the environment: the test prints the current
// hashes and fails, and the constants below must be updated by hand.
// Goldens assume IEEE-754 doubles and one libm (FP results feed the JSON);
// they are tied to the CI/dev toolchain, not to a particular machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>

#include "cluster/presets.hpp"
#include "mr/result_json.hpp"
#include "obs/session.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

struct GoldenCase {
  workloads::SchedulerKind kind;
  MiB block_size;
  const char* label;
  std::uint64_t expected;
};

// All four comparison systems of the paper (Fig. 5/6 configuration).
const GoldenCase kCases[] = {
    {workloads::SchedulerKind::kHadoop, kLargeBlockMiB, "Hadoop-128m",
     0x0a1990820730e5d7ull},
    {workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, "Hadoop-64m",
     0x9f9a7d1d34b8a063ull},
    {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB, "SkewTune-64m",
     0x8975dc6c0ed84393ull},
    {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap",
     0x9884f7fe650b6a4aull},
};

// Same four systems under a canonical non-empty fault plan: one silent
// crash with rejoin plus transient attempt and shuffle-fetch failures.
// Pins the whole fault path — injector RNG stream, replica bookkeeping,
// re-replication pipeline, fetch retries — to a byte-stable timeline.
const GoldenCase kFaultCases[] = {
    {workloads::SchedulerKind::kHadoop, kLargeBlockMiB,
     "Faults-Hadoop-128m", 0x952a3362b487103full},
    {workloads::SchedulerKind::kHadoop, kDefaultBlockMiB,
     "Faults-Hadoop-64m", 0x7cf851d06f8ce2afull},
    // Regenerated when stock-derived schedulers learned to re-pend
    // partially-consumed blocks (relaunching only the free remainder):
    // SkewTune's post-crash timeline changed, with exactly-once intact.
    {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB,
     "Faults-SkewTune-64m", 0xc89a5686d50bcfbfull},
    {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB,
     "Faults-FlexMap", 0x4a019693852e41faull},
};

faults::FaultPlan golden_fault_plan() {
  faults::FaultPlan plan;
  plan.crashes = {faults::NodeCrash{3, 25.0, 90.0, true}};
  plan.attempt_failure_prob = 0.05;
  plan.fetch_failure_prob = 0.05;
  return plan;
}

std::string run_case(const GoldenCase& c, const faults::FaultPlan& plan,
                     obs::TraceSession* trace = nullptr) {
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.block_size = c.block_size;
  config.params.seed = 1234;
  config.faults = plan;
  config.trace = trace;
  const auto result =
      workloads::run_job(cluster, workloads::benchmark("WC"),
                         workloads::InputScale::kSmall, c.kind, config);
  return mr::job_result_json(result, cluster);
}

void check_goldens(const GoldenCase* cases, std::size_t n,
                   const faults::FaultPlan& plan) {
  const bool regen = std::getenv("FLEXMR_REGEN_GOLDEN") != nullptr;
  bool all_match = true;
  for (std::size_t i = 0; i < n; ++i) {
    const GoldenCase& c = cases[i];
    const std::uint64_t hash = fnv1a(run_case(c, plan));
    if (regen) {
      std::printf("    {workloads::SchedulerKind::k..., ..., \"%s\",\n"
                  "     0x%016llxull},\n",
                  c.label, static_cast<unsigned long long>(hash));
      all_match = false;
      continue;
    }
    EXPECT_EQ(hash, c.expected) << c.label;
    all_match = all_match && hash == c.expected;
  }
  if (regen) {
    FAIL() << "FLEXMR_REGEN_GOLDEN set: hashes printed above; update "
              "the golden cases and re-run without the env var";
  }
  EXPECT_TRUE(all_match);
}

TEST(GoldenDeterminism, JobResultJsonMatchesPreOptimizationGolden) {
  check_goldens(kCases, std::size(kCases), faults::FaultPlan{});
}

TEST(GoldenDeterminism, FaultTimelineMatchesGolden) {
  check_goldens(kFaultCases, std::size(kFaultCases), golden_fault_plan());
}

// The tracer observes, never perturbs: attaching a live TraceSession must
// leave every pinned hash untouched (no RNG draws, no event-queue
// changes, same sim_events_fired/cancelled/queue_peak). Covers both the
// clean and the fault-plan cases.
TEST(GoldenDeterminism, TracingOnLeavesGoldenHashesUnchanged) {
  for (const auto& c : kCases) {
    obs::TraceSession trace;
    EXPECT_EQ(fnv1a(run_case(c, faults::FaultPlan{}, &trace)), c.expected)
        << c.label << " with tracing enabled";
    EXPECT_FALSE(trace.tracer().empty()) << c.label;
    EXPECT_GT(trace.metrics().num_rows(), 0u) << c.label;
  }
  const auto plan = golden_fault_plan();
  for (const auto& c : kFaultCases) {
    obs::TraceSession trace;
    EXPECT_EQ(fnv1a(run_case(c, plan, &trace)), c.expected)
        << c.label << " with tracing enabled";
    EXPECT_GT(trace.metrics().counter_value("fault_events"), 0u) << c.label;
  }
}

// The trace itself is an artifact: two identical traced runs must produce
// byte-identical flexmr.trace.v1 documents.
TEST(GoldenDeterminism, TraceDocumentIsByteStable) {
  const auto plan = golden_fault_plan();
  obs::TraceSession first;
  obs::TraceSession second;
  run_case(kFaultCases[3], plan, &first);
  run_case(kFaultCases[3], plan, &second);
  EXPECT_EQ(first.trace_json(), second.trace_json());
  EXPECT_EQ(first.metrics_csv(), second.metrics_csv());
}

// Independent of the golden constants: the same seed must give the same
// bytes on a second in-process run (fresh cluster + scheduler instances).
TEST(GoldenDeterminism, RepeatedRunsAreByteIdentical) {
  for (const auto& c : kCases) {
    EXPECT_EQ(run_case(c, faults::FaultPlan{}), run_case(c, faults::FaultPlan{}))
        << c.label;
  }
  const auto plan = golden_fault_plan();
  for (const auto& c : kFaultCases) {
    EXPECT_EQ(run_case(c, plan), run_case(c, plan)) << c.label;
  }
}

}  // namespace
}  // namespace flexmr
