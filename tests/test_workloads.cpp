// PUMA workload table and layout generation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workloads/experiment.hpp"
#include "workloads/puma.hpp"

namespace flexmr::workloads {
namespace {

TEST(Puma, SuiteHasEightBenchmarksInFigureOrder) {
  const auto& suite = puma_suite();
  ASSERT_EQ(suite.size(), 8u);
  const char* order[] = {"WC", "II", "TV", "GR", "KM", "HR", "HM", "TS"};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(suite[i].code, order[i]);
}

TEST(Puma, TableIiInputSizes) {
  // Spot-check against Table II.
  EXPECT_DOUBLE_EQ(benchmark("WC").small_input, gib_to_mib(20));
  EXPECT_DOUBLE_EQ(benchmark("WC").large_input, gib_to_mib(256));
  EXPECT_DOUBLE_EQ(benchmark("TS").small_input, gib_to_mib(10));
  EXPECT_DOUBLE_EQ(benchmark("TS").large_input, gib_to_mib(128));
  EXPECT_DOUBLE_EQ(benchmark("HM").large_input, gib_to_mib(128));
}

TEST(Puma, MapHeavyVsReduceHeavyProfiles) {
  // §IV-B: WC/GR/HR/HM are map-heavy; II/TS reduce-dominated.
  for (const char* code : {"WC", "GR", "HR", "HM", "KM"}) {
    EXPECT_LT(benchmark(code).shuffle_ratio, 0.3) << code;
  }
  for (const char* code : {"II", "TS"}) {
    EXPECT_GE(benchmark(code).shuffle_ratio, 0.9) << code;
  }
}

TEST(Puma, UnknownCodeThrows) {
  EXPECT_THROW(benchmark("nope"), ConfigError);
}

TEST(Puma, ToJobSpecCopiesProfile) {
  const auto spec = to_job_spec(benchmark("II"), InputScale::kSmall, 7);
  EXPECT_EQ(spec.name, "inverted-index");
  EXPECT_DOUBLE_EQ(spec.input_size, gib_to_mib(20));
  EXPECT_EQ(spec.num_reducers, 7u);
  EXPECT_GT(spec.reduce_key_skew, 0.0);
  EXPECT_FALSE(spec.map_only());
}

TEST(Puma, MakeLayoutSizesAndCosts) {
  auto bench = benchmark("WC");
  bench.small_input = 640.0;
  const auto layout = make_layout(bench, InputScale::kSmall, 8, 64.0, 3, 7);
  EXPECT_EQ(layout.blocks.size(), 10u);
  EXPECT_EQ(layout.bus.size(), 80u);
  // Record skew: costs vary but have roughly unit mean.
  double sum = 0;
  bool varied = false;
  for (const auto& bu : layout.bus) {
    EXPECT_GT(bu.cost, 0.0);
    sum += bu.cost;
    if (std::abs(bu.cost - 1.0) > 1e-9) varied = true;
  }
  EXPECT_TRUE(varied);
  EXPECT_NEAR(sum / 80.0, 1.0, 0.15);
}

TEST(Puma, TeraGenNearlyUniformCosts) {
  auto bench = benchmark("TS");
  bench.small_input = 640.0;
  const auto layout = make_layout(bench, InputScale::kSmall, 8, 64.0, 3, 7);
  for (const auto& bu : layout.bus) {
    EXPECT_NEAR(bu.cost, 1.0, 0.12);  // sigma = 0.02
  }
}

TEST(Puma, SameSeedSameLayoutAndSkew) {
  const auto a = make_layout(benchmark("WC"), InputScale::kSmall, 8, 64.0,
                             3, 123);
  const auto b = make_layout(benchmark("WC"), InputScale::kSmall, 8, 64.0,
                             3, 123);
  ASSERT_EQ(a.bus.size(), b.bus.size());
  for (std::size_t i = 0; i < a.bus.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.bus[i].cost, b.bus[i].cost);
  }
}

TEST(SchedulerFactory, AllKindsConstructAndAreNamed) {
  for (const auto kind :
       {SchedulerKind::kHadoop, SchedulerKind::kHadoopNoSpec,
        SchedulerKind::kSkewTune, SchedulerKind::kFlexMap,
        SchedulerKind::kFlexMapNoVertical,
        SchedulerKind::kFlexMapNoHorizontal,
        SchedulerKind::kFlexMapNoReduceBias}) {
    const auto scheduler = make_scheduler(kind);
    EXPECT_FALSE(scheduler->name().empty());
    EXPECT_FALSE(scheduler_label(kind).empty());
  }
}

}  // namespace
}  // namespace flexmr::workloads
