// Self-profiler (src/obs/profiler.hpp): scope-tree semantics, activation
// contract, lane telemetry, JSON shape — and the tenth pinned golden: the
// simulation output is byte-identical with the profiler ACTIVE, because the
// profiler only ever reads the host clock, never simulation state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "obs/profiler.hpp"
#include "obs/session.hpp"
#include "tests/golden_cases.hpp"

namespace flexmr {
namespace {

using obs::ProfScope;
using obs::Profiler;

/// Installs a fresh profiler for the test body and guarantees deactivation
/// even when an assertion fails mid-test.
struct ActiveProfiler {
  Profiler profiler;
  ActiveProfiler() { Profiler::activate(profiler); }
  ~ActiveProfiler() { Profiler::deactivate(); }
};

TEST(Profiler, InactiveByDefaultAndScopesNoOp) {
  ASSERT_EQ(Profiler::active(), nullptr);
  // Instrumentation sites must be safe with no profiler installed.
  FLEXMR_PROF_SCOPE("never/recorded");
  EXPECT_EQ(Profiler::active(), nullptr);
}

TEST(Profiler, ScopeTreeCountsAndSiblingMerge) {
  ActiveProfiler active;
  Profiler& p = active.profiler;
  {
    FLEXMR_PROF_SCOPE("outer");
    {
      FLEXMR_PROF_SCOPE("inner");
    }
    {
      FLEXMR_PROF_SCOPE("inner");  // same (parent, name): same scope node
    }
  }
  {
    FLEXMR_PROF_SCOPE("outer");  // re-entering a root merges too
  }
  // "inner" at the root is a *different* scope than "inner" under "outer".
  {
    FLEXMR_PROF_SCOPE("inner");
  }

  ASSERT_EQ(p.scopes().size(), 3u);
  const Profiler::Scope* outer = p.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_EQ(outer->parent, Profiler::kNoParent);
  ASSERT_EQ(outer->children.size(), 1u);

  const Profiler::Scope& inner_child = p.scopes()[outer->children[0]];
  EXPECT_STREQ(inner_child.name, "inner");
  EXPECT_EQ(inner_child.count, 2u);

  // Exclusive never exceeds inclusive, and the parent's inclusive time is
  // exactly its self time plus its completed children's inclusive time.
  EXPECT_LE(inner_child.exclusive_ns, inner_child.inclusive_ns);
  EXPECT_LE(outer->exclusive_ns, outer->inclusive_ns);
  EXPECT_EQ(outer->inclusive_ns,
            outer->exclusive_ns + inner_child.inclusive_ns);

  // total_exclusive_ns is the self-time denominator over all scopes.
  std::uint64_t sum = 0;
  for (const auto& s : p.scopes()) sum += s.exclusive_ns;
  EXPECT_EQ(p.total_exclusive_ns(), sum);
}

TEST(Profiler, OffOwnerThreadScopesAreNoOps) {
  ActiveProfiler active;
  std::thread worker([] {
    // Worker threads (bench pool sweeps) hit instrumented code; the scope
    // stack belongs to the activating thread, so this must not record.
    FLEXMR_PROF_SCOPE("worker/ignored");
  });
  worker.join();
  EXPECT_EQ(active.profiler.find("worker/ignored"), nullptr);
  EXPECT_TRUE(active.profiler.scopes().empty());
}

TEST(Profiler, LaneTelemetryAndWindows) {
  ActiveProfiler active;
  Profiler& p = active.profiler;
  p.ensure_lanes(3);
  p.record_lane_drain(0, 400, 10);
  p.record_lane_drain(1, 100, 2);
  p.record_lane_drain(0, 200, 5);  // accumulates per lane
  p.record_window(1000, 50);
  p.record_window(2000, 70);

  ASSERT_EQ(p.lanes().size(), 3u);
  EXPECT_EQ(p.lanes()[0].busy_ns, 600u);
  EXPECT_EQ(p.lanes()[0].drained, 15u);
  EXPECT_EQ(p.lanes()[1].busy_ns, 100u);
  EXPECT_EQ(p.lanes()[2].busy_ns, 0u);
  EXPECT_EQ(p.windows(), 2u);
  EXPECT_EQ(p.drain_wall_ns(), 3000u);
  EXPECT_EQ(p.merge_ns(), 120u);
}

TEST(Profiler, JsonShape) {
  ActiveProfiler active;
  Profiler& p = active.profiler;
  {
    FLEXMR_PROF_SCOPE("sim/dispatch");
    {
      FLEXMR_PROF_SCOPE("rm/offer_all");
    }
  }
  p.ensure_lanes(2);
  p.record_lane_drain(0, 300, 7);
  p.record_window(500, 20);

  const std::string doc = p.json();
  EXPECT_EQ(doc.rfind("{\"schema\":\"flexmr.profile.v1\"", 0), 0u);
  EXPECT_NE(doc.find("\"host\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_ns\":"), std::string::npos);
  EXPECT_NE(doc.find("\"total_exclusive_ns\":"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"sim/dispatch\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"rm/offer_all\""), std::string::npos);
  // Roots serialize parent as -1; children reference an earlier id.
  EXPECT_NE(doc.find("\"parent\":-1"), std::string::npos);
  EXPECT_NE(doc.find("\"parent\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"lanes\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"windows\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"per_lane\":["), std::string::npos);
  EXPECT_NE(doc.find("\"imbalance\":{"), std::string::npos);
}

std::uint64_t parse_events_fired(const std::string& result_json) {
  const std::string key = "\"events_fired\":";
  const auto pos = result_json.find(key);
  EXPECT_NE(pos, std::string::npos);
  return std::stoull(result_json.substr(pos + key.size()));
}

// The tenth pinned golden: enabling the profiler changes no simulation
// output. Every classic-engine hash and a sharded run must match the same
// constants test_golden_determinism.cpp / test_sharded_golden.cpp pin with
// the profiler off — and the profiler must have actually observed the run
// (one sim/dispatch per fired event).
TEST(ProfilerGolden, ClassicEngineByteIdenticalWithProfilerActive) {
  for (const auto& c : golden::kCases) {
    ActiveProfiler active;
    const std::string json = golden::run_case(c, {});
    EXPECT_EQ(golden::fnv1a(json), c.expected)
        << c.label << " diverged with the profiler active";
    const Profiler::Scope* dispatch = active.profiler.find("sim/dispatch");
    ASSERT_NE(dispatch, nullptr) << c.label;
    EXPECT_EQ(dispatch->count, parse_events_fired(json)) << c.label;
  }
}

TEST(ProfilerGolden, ShardedEngineByteIdenticalWithProfilerActive) {
  const auto& c = golden::kCases[3];  // FlexMap, the richest decision path
  ActiveProfiler active;
  obs::TraceSession session;
  const std::string json =
      golden::run_case(c, {}, &session, /*lanes=*/4, /*lane_threads=*/2);
  EXPECT_EQ(golden::fnv1a(json), c.expected)
      << c.label << " (sharded) diverged with the profiler active";
  // The lane-imbalance summary is mirrored into the trace as counters.
  const std::string trace = session.trace_json();
  EXPECT_NE(trace.find("lane_busy_host_ns/0"), std::string::npos);
  EXPECT_NE(trace.find("lane_busy_host_ns/control"), std::string::npos);
  EXPECT_NE(trace.find("lane_imbalance_max_over_mean"), std::string::npos);
  // Lane telemetry rode along: 4 node lanes + the control lane.
  EXPECT_EQ(active.profiler.lanes().size(), 5u);
  EXPECT_GT(active.profiler.windows(), 0u);
  std::uint64_t drained = 0;
  for (const auto& lane : active.profiler.lanes()) drained += lane.drained;
  EXPECT_GT(drained, 0u);
  EXPECT_NE(active.profiler.find("sim/window_drain"), nullptr);
  EXPECT_NE(active.profiler.find("sim/window_merge"), nullptr);
}

}  // namespace
}  // namespace flexmr
