// sweep() determinism: the bench harness folds per-item results in fixed
// index order, so two sweeps over the same grid must agree bit for bit —
// however the thread pool interleaves item completion. Welford's update is
// not commutative in floating point; folding in completion order would make
// BENCH_*.json means/stddevs drift run to run.
#include <gtest/gtest.h>

#include <vector>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

TEST(BenchSweep, ByteIdenticalAcrossRuns) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = 512.0;
  const std::vector<SweepPoint> points = {
      {workloads::SchedulerKind::kHadoopNoSpec, kDefaultBlockMiB, "hadoop"},
      {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB, "flexmap"},
  };
  const std::vector<std::uint64_t> seeds = {1000, 1017, 1034};
  const auto make_cluster = [] { return cluster::presets::homogeneous6(); };

  const auto first = sweep(make_cluster, bench, workloads::InputScale::kSmall,
                           points, seeds);
  const auto second = sweep(make_cluster, bench, workloads::InputScale::kSmall,
                            points, seeds);

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].label, second[i].label);
    // Exact double equality on every folded statistic (wall clock aside —
    // it genuinely differs run to run and never reaches an artifact mean
    // that feeds plots).
    const auto expect_identical = [&](const OnlineStats& a,
                                      const OnlineStats& b) {
      EXPECT_EQ(a.count(), b.count());
      EXPECT_EQ(a.mean(), b.mean());
      EXPECT_EQ(a.stddev(), b.stddev());
      EXPECT_EQ(a.min(), b.min());
      EXPECT_EQ(a.max(), b.max());
    };
    expect_identical(first[i].jct, second[i].jct);
    expect_identical(first[i].efficiency, second[i].efficiency);
    expect_identical(first[i].productivity, second[i].productivity);
  }
}

}  // namespace
}  // namespace flexmr::bench
