// The real threaded mini-MapReduce runtime: output correctness (elastic ≡
// fixed ≡ single-threaded reference), late-binding behavior, and the
// heterogeneity emulation.
#include <gtest/gtest.h>

#include <map>

#include "rt/engine.hpp"

namespace flexmr::rt {
namespace {

Dataset small_dataset(std::uint64_t seed = 1) {
  return Dataset::generate_text(/*num_chunks=*/48, /*chunk_bytes=*/4096,
                                seed);
}

/// Single-threaded reference wordcount.
std::map<std::string, Value> reference_wordcount(const Dataset& dataset) {
  std::map<std::string, Value> counts;
  for (std::size_t c = 0; c < dataset.num_chunks(); ++c) {
    for_each_token(dataset.chunk(c), [&](std::string_view token) {
      ++counts[std::string(token)];
    });
  }
  return counts;
}

EngineConfig fast_config() {
  EngineConfig config;
  config.task_startup = std::chrono::microseconds{300};
  return config;
}

TEST(Dataset, DeterministicGeneration) {
  const auto a = Dataset::generate_text(4, 1024, 7);
  const auto b = Dataset::generate_text(4, 1024, 7);
  ASSERT_EQ(a.num_chunks(), b.num_chunks());
  for (std::size_t c = 0; c < a.num_chunks(); ++c) {
    EXPECT_EQ(a.chunk(c), b.chunk(c));
  }
  EXPECT_GE(a.total_bytes(), 4u * 1024u);
}

TEST(Dataset, ChunksEndAtWordBoundaries) {
  const auto data = Dataset::generate_text(3, 512, 5);
  for (std::size_t c = 0; c < data.num_chunks(); ++c) {
    EXPECT_EQ(data.chunk(c).back(), ' ');
  }
}

TEST(Udf, TokenizerHandlesEdges) {
  std::vector<std::string> tokens;
  for_each_token("  a bb  ccc ", [&](std::string_view t) {
    tokens.emplace_back(t);
  });
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "bb", "ccc"}));
  for_each_token("", [&](std::string_view) { FAIL(); });
  for_each_token("   ", [&](std::string_view) { FAIL(); });
}

TEST(Udf, EmitterCombines) {
  Emitter emitter;
  emitter.emit("x", 1);
  emitter.emit("x", 2);
  emitter.emit("y", 5);
  const auto out = emitter.take();
  EXPECT_EQ(out.at("x"), 3);
  EXPECT_EQ(out.at("y"), 5);
}

TEST(Engine, FixedWordcountMatchesReference) {
  const auto dataset = small_dataset();
  MapReduceEngine engine({{1.0}, {1.0}, {1.0}, {1.0}}, fast_config());
  const auto result =
      engine.run_fixed(dataset, wordcount_map(), sum_reduce(), 4);
  EXPECT_EQ(result.output, reference_wordcount(dataset));
  EXPECT_EQ(result.map_tasks(), 12u);  // 48 chunks / 4
}

TEST(Engine, ElasticWordcountMatchesReference) {
  const auto dataset = small_dataset();
  MapReduceEngine engine({{1.0}, {0.5}, {1.0}, {0.25}}, fast_config());
  const auto result =
      engine.run_elastic(dataset, wordcount_map(), sum_reduce());
  EXPECT_EQ(result.output, reference_wordcount(dataset));
}

TEST(Engine, ElasticEqualsFixedOutputAcrossSeeds) {
  for (const std::uint64_t seed : {2ull, 3ull, 4ull}) {
    const auto dataset = small_dataset(seed);
    MapReduceEngine engine({{1.0}, {0.3}}, fast_config());
    const auto fixed =
        engine.run_fixed(dataset, wordcount_map(), sum_reduce(), 6);
    const auto elastic =
        engine.run_elastic(dataset, wordcount_map(), sum_reduce());
    EXPECT_EQ(fixed.output, elastic.output) << "seed " << seed;
  }
}

TEST(Engine, EveryChunkProcessedExactlyOnce) {
  const auto dataset = small_dataset();
  MapReduceEngine engine({{1.0}, {0.5}, {0.7}}, fast_config());
  const auto result =
      engine.run_elastic(dataset, wordcount_map(), sum_reduce());
  std::size_t chunks = 0;
  for (const auto& task : result.tasks) chunks += task.num_chunks;
  EXPECT_EQ(chunks, dataset.num_chunks());
  std::size_t per_worker = 0;
  for (const auto count : result.chunks_per_worker) per_worker += count;
  EXPECT_EQ(per_worker, dataset.num_chunks());
}

TEST(Engine, GrepCountsOnlyMatches) {
  const auto dataset = small_dataset();
  MapReduceEngine engine({{1.0}, {1.0}}, fast_config());
  const auto result =
      engine.run_fixed(dataset, grep_map("w1"), sum_reduce(), 8);
  for (const auto& [key, value] : result.output) {
    EXPECT_NE(key.find("w1"), std::string::npos);
    EXPECT_GT(value, 0);
  }
  EXPECT_FALSE(result.output.empty());  // "w1", "w10".. are frequent
}

TEST(Engine, HistogramPartitionsAllTokens) {
  const auto dataset = small_dataset();
  MapReduceEngine engine({{1.0}, {1.0}}, fast_config());
  const auto result =
      engine.run_fixed(dataset, histogram_map(), sum_reduce(), 8);
  Value total = 0;
  for (const auto& [key, value] : result.output) {
    EXPECT_EQ(key.rfind("len", 0), 0u);
    total += value;
  }
  Value reference_total = 0;
  for (const auto& [key, value] : reference_wordcount(dataset)) {
    (void)key;
    reference_total += value;
  }
  EXPECT_EQ(total, reference_total);
}

TEST(Engine, ElasticGrowsTaskSizes) {
  const auto dataset = Dataset::generate_text(160, 4096, 9);
  MapReduceEngine engine({{1.0}, {1.0}}, fast_config());
  const auto result =
      engine.run_elastic(dataset, wordcount_map(), sum_reduce());
  std::size_t max_chunks = 0;
  std::size_t first_chunks = result.tasks.empty()
                                 ? 0
                                 : result.tasks.front().num_chunks;
  for (const auto& task : result.tasks) {
    max_chunks = std::max(max_chunks, task.num_chunks);
  }
  EXPECT_EQ(first_chunks, 1u);  // everyone starts at one chunk
  EXPECT_GT(max_chunks, 2u);    // and grows
  EXPECT_LT(result.map_tasks(), 160u);  // fewer tasks than chunks
}

TEST(Engine, SlowWorkerProcessesFewerChunks) {
  const auto dataset = Dataset::generate_text(96, 8192, 21);
  MapReduceEngine engine({{1.0}, {0.2}}, fast_config());
  const auto result =
      engine.run_elastic(dataset, wordcount_map(), sum_reduce());
  EXPECT_GT(result.chunks_per_worker[0], result.chunks_per_worker[1]);
}

TEST(Engine, ReducerCountDoesNotChangeOutput) {
  const auto dataset = small_dataset();
  for (const std::uint32_t reducers : {1u, 2u, 7u, 16u}) {
    EngineConfig config = fast_config();
    config.num_reducers = reducers;
    MapReduceEngine engine({{1.0}, {1.0}}, config);
    const auto result =
        engine.run_fixed(dataset, wordcount_map(), sum_reduce(), 4);
    EXPECT_EQ(result.output, reference_wordcount(dataset))
        << reducers << " reducers";
  }
}

TEST(WorkerSpec, SpeedScheduleLookup) {
  WorkerSpec worker(1.0, {{1.0, 0.5}, {2.0, 0.25}, {5.0, 1.0}});
  EXPECT_DOUBLE_EQ(worker.speed_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(worker.speed_at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(worker.speed_at(1.9), 0.5);
  EXPECT_DOUBLE_EQ(worker.speed_at(3.0), 0.25);
  EXPECT_DOUBLE_EQ(worker.speed_at(100.0), 1.0);
}

TEST(Engine, DynamicSlowdownStillProducesCorrectOutput) {
  const auto dataset = Dataset::generate_text(96, 8192, 33);
  // Worker 1 collapses to 15% speed as soon as the job starts (a noisy
  // neighbor arriving) — the schedule path must throttle it from the
  // first chunk on, and elastic sizing must shift work to worker 0.
  MapReduceEngine engine(
      {{1.0, {}}, {1.0, {{0.0, 0.15}}}}, fast_config());
  const auto result =
      engine.run_elastic(dataset, wordcount_map(), sum_reduce());
  std::map<std::string, Value> reference;
  for (std::size_t c = 0; c < dataset.num_chunks(); ++c) {
    for_each_token(dataset.chunk(c), [&](std::string_view token) {
      ++reference[std::string(token)];
    });
  }
  EXPECT_EQ(result.output, reference);
  // The healthy worker absorbs most of the input.
  EXPECT_GT(result.chunks_per_worker[0], result.chunks_per_worker[1]);
}

TEST(Engine, ScheduleValidation) {
  EXPECT_THROW(
      MapReduceEngine({{1.0, {{5.0, 0.5}, {1.0, 0.5}}}}, EngineConfig{}),
      InvariantError);
  EXPECT_THROW(MapReduceEngine({{1.0, {{1.0, 0.0}}}}, EngineConfig{}),
               InvariantError);
}

TEST(Engine, InvalidConfigThrows) {
  EXPECT_THROW(MapReduceEngine({}, EngineConfig{}), InvariantError);
  EXPECT_THROW(MapReduceEngine({{0.0}}, EngineConfig{}), InvariantError);
  EXPECT_THROW(MapReduceEngine({{2.0}}, EngineConfig{}), InvariantError);
  MapReduceEngine engine({{1.0}}, EngineConfig{});
  const auto dataset = Dataset::generate_text(2, 256, 1);
  EXPECT_THROW(
      engine.run_fixed(dataset, wordcount_map(), sum_reduce(), 0),
      InvariantError);
}

}  // namespace
}  // namespace flexmr::rt
