// LateTaskBinder: locality-maximizing split construction (§III-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "flexmap/ltb.hpp"
#include "hdfs/namenode.hpp"

namespace flexmr::flexmap {
namespace {

class LtbTest : public ::testing::Test {
 protected:
  LtbTest()
      : layout_(hdfs::NameNode(5, hdfs::PlacementPolicy::kRandom, Rng(3))
                    .create_file(64.0 * 10, 64.0, 3, 8.0)),
        index_(layout_, 5),
        binder_(index_) {}

  bool is_local(BlockUnitId bu, NodeId node) const {
    const auto& replicas = layout_.replicas_of(bu);
    return std::find(replicas.begin(), replicas.end(), node) !=
           replicas.end();
  }

  hdfs::FileLayout layout_;
  hdfs::BlockLocationIndex index_;
  LateTaskBinder binder_;
};

TEST_F(LtbTest, PrefersLocalBus) {
  const auto split = binder_.bind(2, 4);
  ASSERT_EQ(split.bus.size(), 4u);
  EXPECT_EQ(split.local, 4u);
  EXPECT_EQ(split.remote, 0u);
  for (const BlockUnitId bu : split.bus) EXPECT_TRUE(is_local(bu, 2));
}

TEST_F(LtbTest, FallsBackToRemoteWhenLocalExhausted) {
  // Drain node 0's local BUs completely.
  while (index_.local_count(0) > 0) binder_.bind(0, 8);
  ASSERT_GT(index_.unprocessed(), 0u);
  const auto split = binder_.bind(0, 3);
  ASSERT_EQ(split.bus.size(), 3u);
  EXPECT_EQ(split.local, 0u);
  EXPECT_EQ(split.remote, 3u);
  for (const BlockUnitId bu : split.bus) EXPECT_FALSE(is_local(bu, 0));
}

TEST_F(LtbTest, MixedLocalRemoteSplit) {
  // Leave exactly 2 local BUs on node 1, then request 5.
  while (index_.local_count(1) > 2) binder_.bind(1, 1);
  const auto split = binder_.bind(1, 5);
  ASSERT_EQ(split.bus.size(), 5u);
  EXPECT_EQ(split.local, 2u);
  EXPECT_EQ(split.remote, 3u);
}

TEST_F(LtbTest, ExactlyOnceAcrossBinds) {
  std::set<BlockUnitId> seen;
  NodeId node = 0;
  while (index_.unprocessed() > 0) {
    const auto split = binder_.bind(node, 7);
    ASSERT_FALSE(split.bus.empty());
    for (const BlockUnitId bu : split.bus) {
      EXPECT_TRUE(seen.insert(bu).second);
    }
    node = (node + 1) % 5;
  }
  EXPECT_EQ(seen.size(), layout_.bus.size());
}

TEST_F(LtbTest, EmptyWhenFileExhausted) {
  while (index_.unprocessed() > 0) binder_.bind(0, 64);
  const auto split = binder_.bind(0, 4);
  EXPECT_TRUE(split.bus.empty());
  EXPECT_EQ(split.local, 0u);
  EXPECT_EQ(split.remote, 0u);
}

TEST_F(LtbTest, ShortFinalSplitWhenFewerBusRemain) {
  while (index_.unprocessed() > 3) {
    binder_.bind(static_cast<NodeId>(index_.unprocessed() % 5), 8);
  }
  const auto remaining = index_.unprocessed();
  const auto split = binder_.bind(0, 10);
  EXPECT_EQ(split.bus.size(), remaining);
}

}  // namespace
}  // namespace flexmr::flexmap
