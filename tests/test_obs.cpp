// The obs/ tracing subsystem: span bookkeeping, task-lane packing,
// metrics sampling, histogram percentiles, and the flexmr.trace.v1 shell.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/tracer.hpp"

namespace flexmr::obs {
namespace {

std::string events_json(const EventTracer& tracer) {
  JsonWriter w;
  tracer.write_trace_events(w);
  return w.str();
}

TEST(Tracer, BeginEndSpansSerialize) {
  EventTracer tracer;
  tracer.begin({1, 0}, "outer", "test", 1.0);
  tracer.begin({1, 0}, "inner", "test", 2.0);
  tracer.end({1, 0}, 3.0);
  tracer.end({1, 0}, 4.0, {{"note", "done"}});
  const std::string json = events_json(tracer);
  EXPECT_NE(json.find("\"ph\":\"B\",\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\",\"name\":\"inner\""), std::string::npos);
  // Timestamps are sim seconds × 1e6 at export (shortest round-trip form).
  EXPECT_NE(json.find("\"ts\":1e+06"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"done\""), std::string::npos);
}

TEST(Tracer, TaskLanePackingUsesLowestFreeLane) {
  EventTracer tracer;
  tracer.task_begin(5, 100, "a", "task", 0.0);
  tracer.task_begin(5, 101, "b", "task", 0.0);
  tracer.task_end(100, 1.0);  // lane 1 frees
  tracer.task_begin(5, 102, "c", "task", 2.0);  // reuses lane 1
  EXPECT_TRUE(tracer.task_open(101));
  EXPECT_TRUE(tracer.task_open(102));
  EXPECT_FALSE(tracer.task_open(100));
  tracer.task_end(101, 3.0);
  tracer.task_end(102, 3.0);

  const std::string json = events_json(tracer);
  // "a" and "c" share tid 1; "b" sat on tid 2 the whole time.
  EXPECT_NE(json.find("\"name\":\"a\",\"cat\":\"task\",\"pid\":5,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b\",\"cat\":\"task\",\"pid\":5,\"tid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c\",\"cat\":\"task\",\"pid\":5,\"tid\":1"),
            std::string::npos);
}

TEST(Tracer, TaskEndClosesOpenChildren) {
  EventTracer tracer;
  tracer.task_begin(2, 7, "map 7", "map", 0.0);
  tracer.task_child_begin(7, "startup", 0.0);
  tracer.task_child_begin(7, "compute", 1.0);
  // A task killed mid-phase leaves children open; task_end must close
  // them all (at its own timestamp) before the task's E event.
  tracer.task_end(7, 5.0);

  const std::string json = events_json(tracer);
  std::size_t b = 0;
  std::size_t e = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos; ++pos) {
    ++b;
  }
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos; ++pos) {
    ++e;
  }
  EXPECT_EQ(b, 3u);  // task + 2 children
  EXPECT_EQ(b, e);   // balanced
  EXPECT_FALSE(tracer.task_open(7));
}

TEST(Tracer, InstantsCarryScopeAndCountersCarryValue) {
  EventTracer tracer;
  tracer.instant({0, 0}, "tick", "test", 1.5, {{"n", std::uint64_t{3}}});
  tracer.counter(0, "depth", 2.0, 17.0);
  const std::string json = events_json(tracer);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\",\"name\":\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":17"), std::string::npos);
}

TEST(Tracer, MetadataNamesComeFirst) {
  EventTracer tracer;
  tracer.instant({3, 0}, "x", "test", 0.0);
  tracer.set_process_name(3, "node 2");
  tracer.set_thread_name(3, 0, "scheduler");
  const std::string json = events_json(tracer);
  const auto meta = json.find("process_name");
  const auto event = json.find("\"ph\":\"i\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(event, std::string::npos);
  EXPECT_LT(meta, event);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Tracer, ScopedSpanInertWhenNull) {
  {
    ScopedSpan span(nullptr, {0, 0}, "never", "test");
    span.arg("k", 1.0);
    EXPECT_FALSE(span.active());
  }  // no crash, nothing recorded
  EventTracer tracer;
  tracer.set_clock([] { return 4.0; });
  {
    ScopedSpan span(&tracer, {0, 0}, "sizing", "test");
    span.arg("target", std::uint64_t{8});
    EXPECT_TRUE(span.active());
  }
  const std::string json = events_json(tracer);
  EXPECT_NE(json.find("\"name\":\"sizing\""), std::string::npos);
  EXPECT_NE(json.find("\"target\":8"), std::string::npos);
  EXPECT_EQ(tracer.size(), 2u);  // B + E
}

TEST(Metrics, CadenceSamplingEmitsOneRowPerTick) {
  MetricsRegistry metrics(1.0);
  auto& ctr = metrics.counter("work");
  metrics.register_gauge("depth", [] { return 2.5; });
  metrics.maybe_sample(0.0);   // row at t=0
  ctr.inc(5);
  metrics.maybe_sample(0.7);   // no tick crossed
  metrics.maybe_sample(3.2);   // rows at t=1, 2, 3
  EXPECT_EQ(metrics.num_rows(), 4u);
  const std::string csv = metrics.csv();
  EXPECT_EQ(csv.rfind("ts_s,work,depth\n", 0), 0u);
  EXPECT_NE(csv.find("\n1,5,2.5\n"), std::string::npos);
}

TEST(Metrics, SampleNowForcesFinalRow) {
  MetricsRegistry metrics(10.0);
  metrics.counter("c").inc();
  metrics.maybe_sample(0.0);
  metrics.sample_now(3.5);  // off-cadence final row
  EXPECT_EQ(metrics.num_rows(), 2u);
  EXPECT_NE(metrics.csv().find("\n3.5,1\n"), std::string::npos);
}

TEST(Metrics, LogHistogramPercentiles) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
  // Log-bucketed estimate: within one bucket width (~19% span) of truth.
  EXPECT_NEAR(h.percentile(0.5), 500.0, 100.0);
  EXPECT_NEAR(h.percentile(0.9), 900.0, 180.0);
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
}

TEST(Metrics, LogHistogramZeroAndTiny) {
  LogHistogram h;
  h.record(0.0);
  h.record(1e-9);
  h.record(1e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_GE(h.percentile(0.99), h.percentile(0.01));
}

TEST(Metrics, LogHistogramEmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Metrics, LogHistogramSingleSampleIsExactEverywhere) {
  LogHistogram h;
  h.record(5.0);
  // The bucket midpoint is clamped to the observed [min, max], which for a
  // single sample collapses every percentile to the sample itself.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Metrics, LogHistogramBucketBoundaryStraddle) {
  // Two populations in *adjacent* buckets: the quantile walk must land in
  // the first bucket for low q and the second for high q, with the clamp
  // keeping both estimates inside the observed range.
  const double lo_v = 1e-5;
  const double hi_v = 1.2e-5;
  ASSERT_EQ(LogHistogram::bucket_index(lo_v) + 1,
            LogHistogram::bucket_index(hi_v));
  LogHistogram h;
  h.record(lo_v);
  h.record(lo_v);
  h.record(lo_v);
  h.record(hi_v);
  const double p50 = h.percentile(0.5);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, lo_v);
  EXPECT_LT(p50, p99);
  // q=0.99 targets the fourth sample: the high bucket, whose geometric
  // midpoint exceeds max() and clamps to it exactly.
  EXPECT_DOUBLE_EQ(p99, hi_v);
}

TEST(Metrics, LogHistogramTopBucketOverflow) {
  // Values beyond the last bucket bound all collapse into the top bucket;
  // percentiles stay finite and clamped to the observed range.
  ASSERT_EQ(LogHistogram::bucket_index(1e30), LogHistogram::kNumBuckets - 1);
  ASSERT_EQ(LogHistogram::bucket_index(2e30), LogHistogram::kNumBuckets - 1);
  LogHistogram h;
  h.record(1e30);
  h.record(2e30);
  EXPECT_DOUBLE_EQ(h.min(), 1e30);
  EXPECT_DOUBLE_EQ(h.max(), 2e30);
  // Both samples share the top bucket whose nominal midpoint is far below
  // the recorded values; the clamp pins the estimate to min().
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1e30);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2e30);
}

TEST(Session, TraceJsonShell) {
  TraceSession session;
  session.set_metadata("scheduler", "FlexMap");
  session.tracer().instant({0, 0}, "hello", "test", 0.0);
  session.metrics().counter("c").inc();
  session.metrics().sample_now(1.0);
  const std::string doc = session.trace_json();
  EXPECT_EQ(doc.rfind("{\"schema\":\"flexmr.trace.v1\"", 0), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"otherData\":{\"scheduler\":\"FlexMap\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
}

}  // namespace
}  // namespace flexmr::obs
