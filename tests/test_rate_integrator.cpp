// RateIntegrator: progress under piecewise-constant rates — the mechanism
// every running task's completion estimate is built on.
#include <gtest/gtest.h>

#include "simcore/rate_integrator.hpp"

namespace flexmr {
namespace {

TEST(RateIntegrator, ConstantRateProgress) {
  RateIntegrator ri(100.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(ri.done(5.0), 50.0);
  EXPECT_DOUBLE_EQ(ri.remaining(5.0), 50.0);
  EXPECT_DOUBLE_EQ(ri.progress(5.0), 0.5);
  EXPECT_FALSE(ri.finished(5.0));
  EXPECT_TRUE(ri.finished(10.0));
}

TEST(RateIntegrator, EtaUnderConstantRate) {
  RateIntegrator ri(100.0, 10.0, 0.0);
  const auto eta = ri.eta(0.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 10.0);
}

TEST(RateIntegrator, RateChangeReestimatesEta) {
  RateIntegrator ri(100.0, 10.0, 0.0);
  ri.set_rate(5.0, 5.0);  // 50 done, 50 left at half speed
  const auto eta = ri.eta(5.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 15.0);
}

TEST(RateIntegrator, MultipleRateChangesIntegrateExactly) {
  RateIntegrator ri(60.0, 1.0, 0.0);
  ri.set_rate(10.0, 2.0);   // 10 done
  ri.set_rate(20.0, 0.5);   // 30 done
  ri.set_rate(40.0, 10.0);  // 40 done
  const auto eta = ri.eta(40.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 42.0);
}

TEST(RateIntegrator, ZeroRateStalls) {
  RateIntegrator ri(100.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(ri.done(100.0), 0.0);
  EXPECT_FALSE(ri.eta(100.0).has_value());
}

TEST(RateIntegrator, ZeroRateThenResume) {
  RateIntegrator ri(10.0, 1.0, 0.0);
  ri.set_rate(5.0, 0.0);
  ri.set_rate(50.0, 1.0);
  EXPECT_DOUBLE_EQ(ri.done(50.0), 5.0);
  const auto eta = ri.eta(50.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 55.0);
}

TEST(RateIntegrator, DoneClampsAtTotal) {
  RateIntegrator ri(10.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(ri.done(1000.0), 10.0);
  EXPECT_DOUBLE_EQ(ri.progress(1000.0), 1.0);
}

TEST(RateIntegrator, EtaWhenAlreadyFinishedIsNow) {
  RateIntegrator ri(10.0, 10.0, 0.0);
  const auto eta = ri.eta(5.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 5.0);
}

TEST(RateIntegrator, GrowTotalExtendsWork) {
  RateIntegrator ri(10.0, 1.0, 0.0);
  ri.grow_total(5.0, 10.0);  // 5 done, 15 remaining
  EXPECT_DOUBLE_EQ(ri.total(), 20.0);
  const auto eta = ri.eta(5.0);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 20.0);
}

TEST(RateIntegrator, QueryingBackwardsThrows) {
  RateIntegrator ri(10.0, 1.0, 5.0);
  EXPECT_THROW(ri.done(4.0), InvariantError);
}

TEST(RateIntegrator, TinyBackwardsDeltaClampsInsteadOfThrowing) {
  RateIntegrator ri(100.0, 10.0, 1.0);
  ri.advance(2.0);
  // A caller re-deriving "now" from the run_until boundary can land a few
  // ulps early after FP rounding; within the slack the clock clamps to the
  // last update instead of tripping the ordering assert.
  EXPECT_DOUBLE_EQ(ri.done(2.0 - 1e-7), 10.0);
  ri.advance(2.0 - 1e-7);  // must not throw, must not regress progress
  EXPECT_DOUBLE_EQ(ri.done(2.0), 10.0);
  ri.set_rate(2.0 - 1e-7, 20.0);  // rate switch takes effect at 2.0
  EXPECT_DOUBLE_EQ(ri.done(3.0), 30.0);
}

TEST(RateIntegrator, BackwardsDeltaBeyondSlackStillThrows) {
  // Genuinely out-of-order calls skip backwards by whole event gaps, far
  // beyond kClockSlackS — those must still be caught.
  RateIntegrator ri(100.0, 10.0, 1.0);
  ri.advance(2.0);
  EXPECT_GT(1e-5, RateIntegrator::kClockSlackS);
  EXPECT_THROW(ri.done(2.0 - 1e-5), InvariantError);
  EXPECT_THROW(ri.advance(2.0 - 1e-5), InvariantError);
  EXPECT_THROW(ri.set_rate(2.0 - 1e-5, 1.0), InvariantError);
}

TEST(RateIntegrator, ConstructionValidatesArguments) {
  EXPECT_THROW(RateIntegrator(0.0, 1.0, 0.0), InvariantError);
  EXPECT_THROW(RateIntegrator(10.0, -1.0, 0.0), InvariantError);
}

}  // namespace
}  // namespace flexmr
