// Analysis toolkit and the oracle scheduler.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "flexmap/oracle.hpp"
#include "mr/analysis.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark wc(MiB input, double shuffle = 0.25) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

TEST(Analysis, NodeUtilizationAccountsAllWork) {
  auto cluster = cluster::presets::heterogeneous6();
  const auto result = workloads::run_job(cluster, wc(1024.0),
                                         InputScale::kSmall,
                                         SchedulerKind::kHadoop,
                                         RunConfig{});
  const auto stats = mr::node_utilization(result, cluster);
  ASSERT_EQ(stats.size(), cluster.num_nodes());
  MiB total_input = 0;
  double total_busy = 0;
  for (const auto& node : stats) {
    total_input += node.map_input;
    total_busy += node.map_busy + node.reduce_busy + node.wasted;
    EXPECT_LE(node.utilization(result.jct()), 1.0 + 1e-9);
  }
  EXPECT_NEAR(total_input, 1024.0, 1e-6);
  EXPECT_GT(total_busy, 0.0);
}

TEST(Analysis, TailAnalysisIdentifiesLastTask) {
  auto cluster = cluster::presets::heterogeneous6();
  const auto result = workloads::run_job(cluster, wc(1024.0),
                                         InputScale::kSmall,
                                         SchedulerKind::kHadoopNoSpec,
                                         RunConfig{});
  const auto tail = mr::analyze_tail(result);
  EXPECT_GT(tail.p50_at, 0.0);
  EXPECT_LE(tail.p50_at, tail.p90_at);
  EXPECT_LE(tail.p90_at, 1.0 + 1e-9);
  EXPECT_GT(tail.tail_share, 0.0);
  EXPECT_GT(tail.tail_input, 0.0);
}

TEST(Analysis, WaveStatsMatchArithmetic) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = workloads::run_job(cluster, wc(2048.0, 0.0),
                                         InputScale::kSmall,
                                         SchedulerKind::kHadoopNoSpec,
                                         RunConfig{});
  const auto waves = mr::analyze_waves(result);
  // 32 tasks / 24 slots.
  EXPECT_NEAR(waves.mean_waves, 32.0 / 24.0, 1e-9);
  EXPECT_GT(waves.mean_map_concurrency, 0.3);
  EXPECT_LE(waves.mean_map_concurrency, 1.0 + 1e-9);
}

TEST(Oracle, CompletesWithInvariants) {
  auto cluster = cluster::presets::heterogeneous6();
  flexmap::OracleScheduler oracle(cluster);
  const auto result = workloads::run_job(cluster, wc(1024.0),
                                         InputScale::kSmall, oracle,
                                         RunConfig{});
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, 128u);
}

TEST(Oracle, AtLeastAsGoodAsEstimatingFlexMapOnAverage) {
  OnlineStats oracle_jct;
  OnlineStats flexmap_jct;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    RunConfig config;
    config.params.seed = seed;
    auto c1 = cluster::presets::heterogeneous6();
    flexmap::OracleScheduler oracle(c1);
    oracle_jct.add(workloads::run_job(c1, wc(4096.0), InputScale::kSmall,
                                      oracle, config)
                       .jct());
    auto c2 = cluster::presets::heterogeneous6();
    flexmap_jct.add(workloads::run_job(c2, wc(4096.0), InputScale::kSmall,
                                       SchedulerKind::kFlexMap, config)
                        .jct());
  }
  EXPECT_LT(oracle_jct.mean(), flexmap_jct.mean() * 1.05);
}

TEST(Oracle, KnowsSpeedsImmediately) {
  auto cluster = cluster::presets::heterogeneous6();
  flexmap::OracleScheduler oracle(cluster);
  workloads::run_job(cluster, wc(512.0), InputScale::kSmall, oracle,
                     RunConfig{});
  // After the run the inner monitor holds ground truth for every node.
  const auto& monitor = oracle.inner().speed_monitor();
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ASSERT_TRUE(monitor.get_speed(n).has_value());
    EXPECT_DOUBLE_EQ(*monitor.get_speed(n),
                     cluster.machine(n).effective_ips());
  }
}

}  // namespace
}  // namespace flexmr
