// Integration tests: full jobs end-to-end on small clusters, across all
// four schedulers, checking the invariants that make experiment results
// meaningful (exactly-once BUs, phase accounting, metric sanity).
#include <gtest/gtest.h>

#include <set>

#include "cluster/presets.hpp"
#include "hdfs/namenode.hpp"
#include "mr/driver.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark small_bench(double shuffle_ratio = 0.25) {
  workloads::Benchmark bench = workloads::benchmark("WC");
  bench.small_input = 512.0;  // 64 BUs — fast to simulate
  bench.shuffle_ratio = shuffle_ratio;
  return bench;
}

void check_invariants(const mr::JobResult& result, std::size_t total_bus) {
  // Every BU credited exactly once across successful map tasks.
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind != mr::TaskKind::kMap) continue;
    if (task.status != mr::TaskStatus::kKilled) credited += task.num_bus;
    EXPECT_GE(task.end_time, task.dispatch_time);
    if (task.status == mr::TaskStatus::kCompleted) {
      EXPECT_GT(task.compute_start, task.dispatch_time);
      EXPECT_GT(task.productivity(), 0.0);
      EXPECT_LE(task.productivity(), 1.0);
    }
  }
  EXPECT_EQ(credited, total_bus);

  EXPECT_GT(result.jct(), 0.0);
  EXPECT_GE(result.map_phase_end, result.map_phase_start);
  EXPECT_LE(result.map_phase_end, result.finish_time + 1e-9);
  EXPECT_GT(result.efficiency(), 0.0);
  EXPECT_LE(result.efficiency(), 1.0 + 1e-9);
}

class AllSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(AllSchedulers, HomogeneousJobCompletesWithInvariants) {
  auto cluster = cluster::presets::homogeneous6();
  const auto bench = small_bench();
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         GetParam(), RunConfig{});
  check_invariants(result, 64);
}

TEST_P(AllSchedulers, HeterogeneousJobCompletesWithInvariants) {
  auto cluster = cluster::presets::heterogeneous6();
  const auto bench = small_bench();
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         GetParam(), RunConfig{});
  check_invariants(result, 64);
}

TEST_P(AllSchedulers, MapOnlyJobSkipsReducePhase) {
  auto cluster = cluster::presets::homogeneous6();
  const auto bench = small_bench(/*shuffle_ratio=*/0.0);
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         GetParam(), RunConfig{});
  check_invariants(result, 64);
  EXPECT_EQ(result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            0u);
  EXPECT_DOUBLE_EQ(result.map_phase_end, result.finish_time);
}

TEST_P(AllSchedulers, DeterministicGivenSeed) {
  const auto bench = small_bench();
  RunConfig config;
  config.params.seed = 77;
  auto c1 = cluster::presets::heterogeneous6();
  auto c2 = cluster::presets::heterogeneous6();
  const auto a =
      workloads::run_job(c1, bench, InputScale::kSmall, GetParam(), config);
  const auto b =
      workloads::run_job(c2, bench, InputScale::kSmall, GetParam(), config);
  EXPECT_DOUBLE_EQ(a.jct(), b.jct());
  EXPECT_EQ(a.tasks.size(), b.tasks.size());
}

TEST_P(AllSchedulers, VirtualClusterWithDynamicInterferenceCompletes) {
  auto cluster = cluster::presets::virtual20();
  const auto bench = small_bench();
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         GetParam(), RunConfig{});
  check_invariants(result, 64);
}

std::string scheduler_test_name(
    const ::testing::TestParamInfo<SchedulerKind>& param_info) {
  std::string label = workloads::scheduler_label(param_info.param);
  std::erase_if(label, [](char c) { return !std::isalnum(
      static_cast<unsigned char>(c)); });
  return label;
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, AllSchedulers,
    ::testing::Values(SchedulerKind::kHadoop, SchedulerKind::kHadoopNoSpec,
                      SchedulerKind::kSkewTune, SchedulerKind::kFlexMap),
    scheduler_test_name);

TEST(DriverIntegration, ReduceTasksRunAfterMapPhase) {
  auto cluster = cluster::presets::homogeneous6();
  const auto bench = small_bench(0.5);
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         SchedulerKind::kHadoopNoSpec,
                                         RunConfig{});
  // Auto-sizing: intermediate = 512 * 0.5 = 256 MiB at 64 MiB per reducer.
  const auto reducers =
      result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted);
  EXPECT_EQ(reducers, 4u);
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kReduce) {
      EXPECT_GE(task.dispatch_time, result.map_phase_end - 1e-9);
    }
  }
}

TEST(DriverIntegration, ReduceInputsSumToIntermediateData) {
  auto cluster = cluster::presets::homogeneous6();
  const auto bench = small_bench(0.5);
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         SchedulerKind::kHadoopNoSpec,
                                         RunConfig{});
  double reduce_input = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kReduce) reduce_input += task.input_mib;
  }
  EXPECT_NEAR(reduce_input, 512.0 * 0.5, 1e-6);
}

TEST(DriverIntegration, StockTaskCountEqualsBlockCount) {
  auto cluster = cluster::presets::homogeneous6();
  const auto bench = small_bench();
  RunConfig config;
  config.block_size = 64.0;  // 512 MiB / 64 = 8 blocks
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         SchedulerKind::kHadoopNoSpec,
                                         config);
  EXPECT_EQ(result.map_tasks_launched(), 8u);
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap) {
      EXPECT_EQ(task.num_bus, 8u);  // 64 MiB block = 8 BUs
    }
  }
}

TEST(DriverIntegration, DriverDestructionRemovesItsSpeedListeners) {
  // Regression: JobDriver::start() registers [this] lambdas on every
  // machine. The cluster outlives the driver when jobs run sequentially,
  // so a destroyed driver must leave no dangling callbacks behind — a
  // later set_multiplier() on the shared cluster was a use-after-free.
  auto cluster = cluster::presets::heterogeneous6();
  const auto bench = small_bench();
  const auto spec = workloads::to_job_spec(bench, InputScale::kSmall);
  mr::SimParams params;
  params.seed = 5;
  Rng rng(5);
  hdfs::NameNode nn(cluster.num_nodes(), hdfs::PlacementPolicy::kRandom,
                    rng.split());
  const auto layout = nn.create_file(bench.small_input, kDefaultBlockMiB, 3);

  {
    Simulator sim;
    auto scheduler =
        workloads::make_scheduler(SchedulerKind::kFlexMap, params.seed);
    cluster.reset();
    mr::JobDriver driver(sim, cluster, layout, spec, params, *scheduler);
    const auto result = driver.run();
    EXPECT_GT(result.jct(), 0.0);
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      EXPECT_GE(cluster.machine(n).num_speed_listeners(), 1u);
    }
  }
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_EQ(cluster.machine(n).num_speed_listeners(), 0u);
  }
  // A speed change on the shared cluster now touches no stale callback...
  cluster.machine(0).set_multiplier(0.5);

  // ...and a second job back-to-back on the same cluster runs normally.
  const auto second = workloads::run_job(
      cluster, bench, InputScale::kSmall, SchedulerKind::kFlexMap,
      RunConfig{});
  check_invariants(second, 64);
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_EQ(cluster.machine(n).num_speed_listeners(), 0u);
  }
}

TEST(DriverIntegration, MapPhaseRuntimeSpansAllMapTasks) {
  auto cluster = cluster::presets::heterogeneous6();
  const auto bench = small_bench();
  const auto result = workloads::run_job(cluster, bench, InputScale::kSmall,
                                         SchedulerKind::kHadoop, RunConfig{});
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap) {
      EXPECT_LE(task.end_time, result.map_phase_end + 1e-9);
      EXPECT_GE(task.dispatch_time, result.map_phase_start - 1e-9);
    }
  }
}

}  // namespace
}  // namespace flexmr
