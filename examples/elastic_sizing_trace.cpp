// Scenario: watch FlexMap think.
//
// Runs one job on the virtual cluster with a FlexMapScheduler instance we
// keep hold of, then prints the full sizing trace — every completed
// elastic task's size and productivity — plus each node's final size unit
// and what the SpeedMonitor believed about it.
#include <cstdio>

#include "cluster/presets.hpp"
#include "common/table.hpp"
#include "flexmap/export.hpp"
#include "flexmap/flexmap_scheduler.hpp"
#include "workloads/experiment.hpp"

int main() {
  using namespace flexmr;

  auto cluster = cluster::presets::virtual20();
  auto bench = workloads::benchmark("GR");
  bench.small_input = gib_to_mib(8);

  flexmap::FlexMapScheduler scheduler;
  workloads::RunConfig config;
  config.params.seed = 31;
  const auto result = workloads::run_job(
      cluster, bench, workloads::InputScale::kSmall, scheduler, config);

  std::printf("grep on the 20-node virtual cluster under FlexMap: "
              "JCT %.1fs, efficiency %.2f, %zu map tasks\n\n",
              result.jct(), result.efficiency(),
              result.map_tasks_launched());

  // Sizing decisions over time, bucketed by map-phase decile.
  std::printf("task sizes by map-phase progress (all nodes):\n");
  TextTable buckets({"progress", "tasks", "mean size (BUs)",
                     "max size (BUs)", "mean productivity"});
  for (int decile = 0; decile < 10; ++decile) {
    OnlineStats size;
    OnlineStats prod;
    std::uint32_t max_size = 0;
    for (const auto& point : scheduler.sizing_trace()) {
      const int bucket = std::min(9, static_cast<int>(
                                         point.phase_progress * 10.0));
      if (bucket != decile) continue;
      size.add(point.size_bus);
      prod.add(point.productivity);
      max_size = std::max(max_size, point.size_bus);
    }
    if (size.empty()) continue;
    buckets.add_row({std::to_string(decile * 10) + "-" +
                         std::to_string(decile * 10 + 10) + "%",
                     std::to_string(size.count()),
                     TextTable::num(size.mean(), 1),
                     std::to_string(max_size),
                     TextTable::num(prod.mean(), 2)});
  }
  std::printf("%s\n", buckets.str().c_str());

  // What the monitor concluded about each node vs ground truth.
  std::printf("per-node: observed vs true speed, final size unit:\n");
  TextTable nodes({"node", "true IPS", "observed IPS", "size unit (BUs)",
                   "frozen"});
  const auto& monitor = scheduler.speed_monitor();
  const auto& sizer = scheduler.sizer();
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    const auto observed = monitor.get_speed(n);
    nodes.add_row({std::to_string(n),
                   TextTable::num(cluster.machine(n).effective_ips(), 1),
                   observed ? TextTable::num(*observed, 1) : "-",
                   std::to_string(sizer.size_unit(n)),
                   sizer.frozen(n) ? "yes" : "no"});
  }
  std::printf("%s", nodes.str().c_str());

  // The same trace, machine-readable (schema flexmr.flexmap_trace.v1):
  // sizing decisions, raw SpeedMonitor readings, final per-node state.
  const std::string path = "elastic_sizing_trace.json";
  if (std::FILE* file = std::fopen(path.c_str(), "w")) {
    const std::string doc = flexmap::flexmap_trace_json(scheduler);
    std::fwrite(doc.data(), 1, doc.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("\nfull trace written to %s\n", path.c_str());
  }
  return 0;
}
