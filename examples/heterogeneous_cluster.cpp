// Scenario: capacity-proportional data placement on the paper's 12-node
// physical cluster (Table I).
//
// Runs the whole PUMA suite under stock Hadoop and FlexMap and shows, per
// machine class, how much input data each class processed versus its share
// of cluster capacity — the Fig. 2 story at full cluster scale.
#include <cstdio>
#include <map>

#include "cluster/presets.hpp"
#include "common/table.hpp"
#include "workloads/experiment.hpp"

namespace {

struct ClassStats {
  double capacity = 0;
  flexmr::MiB processed = 0;
};

void analyze(const char* label, flexmr::workloads::SchedulerKind kind) {
  using namespace flexmr;
  std::map<std::string, ClassStats> classes;
  double total_capacity = 0;
  MiB total_processed = 0;

  for (const auto& bench : workloads::puma_suite()) {
    auto cluster = cluster::presets::physical12();
    workloads::RunConfig config;
    config.params.seed = 7;
    auto shrunk = bench;
    shrunk.small_input = gib_to_mib(4);  // keep the example snappy
    const auto result = workloads::run_job(
        cluster, shrunk, workloads::InputScale::kSmall, kind, config);

    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      const auto& spec = cluster.machine(n).spec();
      classes[spec.model].capacity += spec.base_ips * spec.slots;
    }
    for (const auto& task : result.tasks) {
      if (task.kind == mr::TaskKind::kMap && task.credited()) {
        classes[cluster.machine(task.node).spec().model].processed +=
            task.input_mib;
        total_processed += task.input_mib;
      }
    }
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      const auto& spec = cluster.machine(n).spec();
      total_capacity += spec.base_ips * spec.slots;
    }
  }

  std::printf("\n=== %s ===\n", label);
  TextTable table({"Machine class", "Capacity share", "Data share",
                   "Mismatch"});
  for (const auto& [model, stats] : classes) {
    const double cap_share = stats.capacity / total_capacity;
    const double data_share = stats.processed / total_processed;
    table.add_row({model, TextTable::num(cap_share * 100, 1) + "%",
                   TextTable::num(data_share * 100, 1) + "%",
                   TextTable::num((data_share - cap_share) * 100, 1) +
                       " pp"});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main() {
  std::printf(
      "How well does each system match data to machine capacity on the\n"
      "paper's physical cluster? (whole PUMA suite, summed per class)\n");
  analyze("Stock Hadoop (64 MB splits)",
          flexmr::workloads::SchedulerKind::kHadoop);
  analyze("FlexMap", flexmr::workloads::SchedulerKind::kFlexMap);
  std::printf(
      "\nA positive mismatch means the class processed more than its\n"
      "capacity share (it was a bottleneck); FlexMap's rows should sit\n"
      "much closer to zero.\n");
  return 0;
}
