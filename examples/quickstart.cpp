// Quickstart: simulate one wordcount job on a small heterogeneous cluster
// under stock Hadoop and under FlexMap, and compare.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cluster/cluster.hpp"
#include "mr/result_json.hpp"
#include "workloads/experiment.hpp"

int main() {
  using namespace flexmr;

  // 1. Describe the hardware: three fast and three slow worker nodes.
  //    (Or use a paper preset from cluster/presets.hpp.)
  auto make_cluster = []() {
    cluster::MachineSpec fast{.model = "fast server", .base_ips = 12.0,
                              .slots = 4, .nic_bandwidth = 1192.0,
                              .memory_gb = 32.0};
    cluster::MachineSpec slow{.model = "old desktop", .base_ips = 4.0,
                              .slots = 4, .nic_bandwidth = 1192.0,
                              .memory_gb = 8.0};
    return cluster::ClusterBuilder().add(fast, 3).add(slow, 3).build();
  };

  // 2. Pick a workload. The PUMA table ships with the library; here we
  //    shrink wordcount's input so the example runs instantly.
  auto bench = workloads::benchmark("WC");
  bench.small_input = gib_to_mib(4);

  // 3. Run the same job (same seed → same data layout, same interference)
  //    under each scheduler.
  std::printf("%-14s %10s %12s %12s %10s\n", "scheduler", "JCT(s)",
              "map-phase(s)", "efficiency", "maps");
  for (const auto kind :
       {workloads::SchedulerKind::kHadoop,
        workloads::SchedulerKind::kSkewTune,
        workloads::SchedulerKind::kFlexMap}) {
    auto cluster = make_cluster();
    workloads::RunConfig config;
    config.block_size = kDefaultBlockMiB;  // 64 MB splits for stock
    config.params.seed = 2024;
    const auto result = workloads::run_job(
        cluster, bench, workloads::InputScale::kSmall, kind, config);
    std::printf("%-14s %10.1f %12.1f %12.3f %10zu\n",
                workloads::scheduler_label(kind).c_str(), result.jct(),
                result.map_phase_runtime(), result.efficiency(),
                result.map_tasks_launched());

    // 4. Every run can be exported as JSON (schema flexmr.job_result.v1):
    //    full task timeline, per-node utilization, derived metrics.
    if (kind == workloads::SchedulerKind::kFlexMap) {
      const std::string path = "quickstart_flexmap_result.json";
      if (std::FILE* file = std::fopen(path.c_str(), "w")) {
        const std::string doc = mr::job_result_json(result, cluster);
        std::fwrite(doc.data(), 1, doc.size(), file);
        std::fputc('\n', file);
        std::fclose(file);
        std::printf("               (full result written to %s)\n",
                    path.c_str());
      }
    }
  }
  std::printf("\nFlexMap should show the lowest JCT and highest efficiency:"
              "\nelastic tasks give the fast servers proportionally more "
              "data\ninstead of making them wait on the desktops.\n");
  return 0;
}
