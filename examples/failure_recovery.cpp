// Scenario: a worker node dies mid-job.
//
// Runs the same wordcount twice on a small cluster — once undisturbed,
// once with node 2 failing during the map phase — and shows the recovery:
// the killed containers, the re-executed lost outputs, the utilization
// shift onto the survivors, and an ASCII Gantt chart of both runs.
#include <cstdio>

#include "cluster/presets.hpp"
#include "common/table.hpp"
#include "mr/analysis.hpp"
#include "mr/trace.hpp"
#include "workloads/experiment.hpp"

namespace {

void report(const char* label, const flexmr::mr::JobResult& result,
            const flexmr::cluster::Cluster& cluster) {
  using namespace flexmr;
  std::printf("\n=== %s ===\n", label);
  std::printf("JCT %.1fs | map phase %.1fs | killed %zu | lost-output %zu "
              "| wasted %.1f slot-s\n",
              result.jct(), result.map_phase_runtime(),
              result.count(mr::TaskKind::kMap, mr::TaskStatus::kKilled),
              result.count(mr::TaskKind::kMap,
                           mr::TaskStatus::kLostOutput),
              result.wasted_slot_time());

  TextTable table({"node", "map busy (s)", "reduce busy (s)",
                   "wasted (s)", "input processed (MiB)"});
  for (const auto& node : mr::node_utilization(result, cluster)) {
    table.add_row({std::to_string(node.node),
                   TextTable::num(node.map_busy, 1),
                   TextTable::num(node.reduce_busy, 1),
                   TextTable::num(node.wasted, 1),
                   TextTable::num(node.map_input, 0)});
  }
  std::printf("%s\n%s", table.str().c_str(),
              mr::gantt(result, cluster, 90).c_str());
}

}  // namespace

int main() {
  using namespace flexmr;

  auto bench = workloads::benchmark("WC");
  bench.small_input = 2048.0;
  bench.shuffle_ratio = 0.5;

  auto cluster = cluster::presets::homogeneous6();
  workloads::RunConfig config;
  config.params.seed = 4;
  const auto healthy = workloads::run_job(
      cluster, bench, workloads::InputScale::kSmall,
      workloads::SchedulerKind::kFlexMap, config);
  report("healthy run (FlexMap, 6 nodes)", healthy, cluster);

  auto cluster2 = cluster::presets::homogeneous6();
  config.node_failures = {{2, 12.0}};
  const auto failed = workloads::run_job(
      cluster2, bench, workloads::InputScale::kSmall,
      workloads::SchedulerKind::kFlexMap, config);
  report("node 2 fails at t=12s", failed, cluster2);

  std::printf("\nRecovery cost: +%.1fs JCT (%.0f%%). The node 2 lanes go\n"
              "silent after the failure; its completed map outputs are\n"
              "re-executed on the survivors ('x' marks discarded work).\n",
              failed.jct() - healthy.jct(),
              (failed.jct() / healthy.jct() - 1.0) * 100.0);
  return 0;
}
