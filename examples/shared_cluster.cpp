// Scenario: several jobs share one heterogeneous cluster.
//
// Submits three jobs to the paper's physical cluster — a wordcount under
// stock Hadoop at t=0, a grep under FlexMap at t=10, and a tera-sort
// under stock at t=20 — and runs them under FIFO and under fair sharing.
// Different AM schedulers coexist: slot arbitration is the coordinator's
// job, sizing is each job's own (exactly YARN's RM/AM split).
#include <cstdio>

#include "cluster/presets.hpp"
#include "common/table.hpp"
#include "mr/multi_job.hpp"
#include "workloads/experiment.hpp"

namespace {

void run(flexmr::mr::SharePolicy policy, const char* label) {
  using namespace flexmr;

  auto cluster = cluster::presets::physical12();
  Simulator sim;
  mr::MultiJobCoordinator coordinator(sim, cluster, policy);

  struct Submission {
    const char* code;
    workloads::SchedulerKind kind;
    SimTime at;
  };
  const Submission plan[] = {
      {"WC", workloads::SchedulerKind::kHadoop, 0.0},
      {"GR", workloads::SchedulerKind::kFlexMap, 10.0},
      {"TS", workloads::SchedulerKind::kHadoop, 20.0},
  };

  std::vector<hdfs::FileLayout> layouts;
  std::vector<std::unique_ptr<mr::Scheduler>> schedulers;
  layouts.reserve(3);
  std::uint64_t seed = 100;
  for (const auto& submission : plan) {
    auto bench = workloads::benchmark(submission.code);
    bench.small_input = gib_to_mib(4);
    layouts.push_back(workloads::make_layout(
        bench, workloads::InputScale::kSmall, cluster.num_nodes(), 64.0, 3,
        seed++));
    schedulers.push_back(
        workloads::make_scheduler(submission.kind, seed));
  }
  for (std::size_t j = 0; j < 3; ++j) {
    auto bench = workloads::benchmark(plan[j].code);
    bench.small_input = gib_to_mib(4);
    coordinator.submit(layouts[j],
                       workloads::to_job_spec(
                           bench, workloads::InputScale::kSmall),
                       mr::SimParams{}, *schedulers[j], plan[j].at);
  }

  const auto results = coordinator.run_all();
  std::printf("\n=== %s ===\n", label);
  TextTable table({"job", "scheduler", "submitted", "finished", "JCT (s)",
                   "map tasks"});
  for (std::size_t j = 0; j < results.size(); ++j) {
    table.add_row({plan[j].code, workloads::scheduler_label(plan[j].kind),
                   TextTable::num(results[j].submit_time, 0) + "s",
                   TextTable::num(results[j].finish_time, 0) + "s",
                   TextTable::num(results[j].jct(), 1),
                   std::to_string(results[j].map_tasks_launched())});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main() {
  run(flexmr::mr::SharePolicy::kFifo, "FIFO arbitration");
  run(flexmr::mr::SharePolicy::kFair, "fair sharing");
  std::printf(
      "\nUnder FIFO the wordcount monopolizes the cluster until its maps\n"
      "drain; under fair sharing the later jobs start immediately and\n"
      "everyone's JCT evens out.\n");
  return 0;
}
