// Scenario: describe an experiment in an INI file instead of C++.
//
//   ./build/examples/custom_cluster examples/cluster.ini
//
// The file declares machine groups, a workload, a scheduler, optional
// node failures, and output options; this program builds it all through
// the public API and runs it. With no argument it uses a built-in demo
// config. Supported keys (see examples/cluster.ini for a walkthrough):
//
//   [groupN]  model, count, ips, slots, slowdown
//   [job]     benchmark (PUMA code), input_gib, block_mb, repeats
//   [run]     seed, scheduler (hadoop | hadoop-nospec | skewtune |
//             flexmap | flexmap-nov | flexmap-noh | flexmap-norb),
//             gantt (bool), csv (bool)
//   [failures] nodeN = <node_id> @ <time_s>      (e.g. node1 = 3 @ 25)
#include <cstdio>
#include <string>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "mr/trace.hpp"
#include "workloads/experiment.hpp"

namespace {

constexpr const char* kDemoConfig = R"(
# Demo experiment: small mixed cluster, wordcount under FlexMap.
[group1]
model = rack server
count = 4
ips = 12
slots = 4
slowdown = 1.0

[group2]
model = legacy box
count = 4
ips = 5
slots = 4
slowdown = 1.0

[job]
benchmark = WC
input_gib = 4
block_mb = 64
repeats = 3

[run]
seed = 9
scheduler = flexmap
)";

flexmr::cluster::Cluster build_cluster(const flexmr::Config& config) {
  using namespace flexmr;
  cluster::ClusterBuilder builder;
  for (int g = 1;; ++g) {
    const std::string section = "group" + std::to_string(g);
    if (!config.has(section + ".count")) break;
    cluster::MachineSpec spec;
    spec.model = config.get_string(section + ".model", section);
    spec.base_ips = config.require_double(section + ".ips");
    spec.slots =
        static_cast<std::uint32_t>(config.get_int(section + ".slots", 4));
    const double slowdown =
        config.get_double(section + ".slowdown", 1.0);
    builder.add(spec,
                static_cast<std::uint32_t>(
                    config.require_int(section + ".count")),
                slowdown < 1.0 ? cluster::static_slowdown(slowdown)
                               : cluster::no_interference());
  }
  return builder.build();
}

flexmr::workloads::SchedulerKind parse_scheduler(const std::string& name) {
  using flexmr::workloads::SchedulerKind;
  if (name == "hadoop") return SchedulerKind::kHadoop;
  if (name == "hadoop-nospec") return SchedulerKind::kHadoopNoSpec;
  if (name == "skewtune") return SchedulerKind::kSkewTune;
  if (name == "flexmap") return SchedulerKind::kFlexMap;
  if (name == "flexmap-nov") return SchedulerKind::kFlexMapNoVertical;
  if (name == "flexmap-noh") return SchedulerKind::kFlexMapNoHorizontal;
  if (name == "flexmap-norb") return SchedulerKind::kFlexMapNoReduceBias;
  throw flexmr::ConfigError("unknown scheduler: " + name);
}

std::vector<std::pair<flexmr::NodeId, flexmr::SimTime>> parse_failures(
    const flexmr::Config& config) {
  std::vector<std::pair<flexmr::NodeId, flexmr::SimTime>> failures;
  for (int i = 1;; ++i) {
    const auto value =
        config.get("failures.node" + std::to_string(i));
    if (!value) break;
    const auto at = value->find('@');
    if (at == std::string::npos) {
      throw flexmr::ConfigError("failure spec must be '<node> @ <time>': " +
                                *value);
    }
    failures.emplace_back(
        static_cast<flexmr::NodeId>(std::stoul(value->substr(0, at))),
        std::stod(value->substr(at + 1)));
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexmr;
  try {
    const Config config = argc > 1 ? Config::load(argv[1])
                                   : Config::parse(kDemoConfig);

    auto cluster = build_cluster(config);
    auto bench =
        workloads::benchmark(config.get_string("job.benchmark", "WC"));
    bench.small_input = gib_to_mib(config.get_double("job.input_gib", 4));

    workloads::RunConfig run;
    run.block_size = config.get_double("job.block_mb", 64.0);
    run.params.seed =
        static_cast<std::uint64_t>(config.get_int("run.seed", 1));
    run.node_failures = parse_failures(config);
    const auto kind =
        parse_scheduler(config.get_string("run.scheduler", "flexmap"));
    const auto repeats =
        static_cast<std::uint64_t>(config.get_int("job.repeats", 1));

    std::printf("cluster: %u nodes, %u slots; job: %s (%.0f GiB); "
                "scheduler: %s; repeats: %llu%s\n",
                cluster.num_nodes(), cluster.total_slots(),
                bench.name.c_str(), mib_to_gib(bench.small_input),
                workloads::scheduler_label(kind).c_str(),
                static_cast<unsigned long long>(repeats),
                run.node_failures.empty() ? "" : "; with failures");

    OnlineStats jct;
    OnlineStats efficiency;
    mr::JobResult last;
    for (std::uint64_t r = 0; r < repeats; ++r) {
      run.params.seed += r * 31;
      last = workloads::run_job(cluster, bench, workloads::InputScale::kSmall,
                                kind, run);
      jct.add(last.jct());
      efficiency.add(last.efficiency());
    }
    std::printf("JCT %.1fs (±%.1f) | efficiency %.3f | %zu map tasks | "
                "%zu reducers\n",
                jct.mean(), jct.stddev(), efficiency.mean(),
                last.map_tasks_launched(),
                last.count(mr::TaskKind::kReduce,
                           mr::TaskStatus::kCompleted));

    if (config.get_bool("run.gantt", false)) {
      std::printf("\n%s", mr::gantt(last, cluster, 100).c_str());
    }
    if (config.get_bool("run.csv", false)) {
      std::printf("\n%s", mr::trace_csv(last).c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
