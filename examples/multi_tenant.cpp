// Scenario: how much co-tenant interference can each scheduler absorb?
//
// Sweeps the slow-node fraction of the 40-node multi-tenant cluster from
// 0% to 60% and reports each system's JCT degradation relative to its own
// interference-free baseline — a robustness curve rather than the paper's
// per-benchmark bars (see bench_fig8 for those).
#include <cstdio>

#include "cluster/presets.hpp"
#include "common/table.hpp"
#include "workloads/experiment.hpp"

int main() {
  using namespace flexmr;
  using workloads::SchedulerKind;

  auto bench = workloads::benchmark("WC");
  bench.large_input = gib_to_mib(32);  // trimmed for example runtime

  const SchedulerKind kinds[] = {SchedulerKind::kHadoop,
                                 SchedulerKind::kHadoopNoSpec,
                                 SchedulerKind::kSkewTune,
                                 SchedulerKind::kFlexMap};

  std::printf("JCT inflation vs. the same system on an idle cluster\n"
              "(wordcount, 40-node multi-tenant cluster, co-runner slows "
              "a node to 35%%)\n\n");
  TextTable table({"slow nodes", "Hadoop", "NoSpec", "SkewTune", "FlexMap"});

  double baseline[4] = {0, 0, 0, 0};
  for (const double fraction : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    std::vector<std::string> row{
        TextTable::num(fraction * 100, 0) + "%"};
    for (std::size_t k = 0; k < 4; ++k) {
      OnlineStats jct;
      for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        auto cluster = cluster::presets::multitenant40(fraction);
        workloads::RunConfig config;
        config.params.seed = seed;
        const auto result = workloads::run_job(
            cluster, bench, workloads::InputScale::kLarge, kinds[k],
            config);
        jct.add(result.jct());
      }
      if (fraction == 0.0) baseline[k] = jct.mean();
      row.push_back(TextTable::num(jct.mean() / baseline[k], 2) + "x");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("FlexMap's column should inflate the least: elastic sizing\n"
              "re-routes work away from contended nodes continuously.\n");
  return 0;
}
