// Scenario: run the cluster as a *service*, not a batch.
//
// Three named tenants share the paper's 40-node testbed: "analytics"
// (weight 2, wordcount + inverted-index under FlexMap), "reporting"
// (grep + histogram-ratings under FlexMap) and "batch" (terasort on stock
// Hadoop). Jobs arrive in an open Poisson stream, an admission queue caps
// how many run at once, and the cluster scheduler divides containers by
// weighted tenant share — preempting an over-share tenant's maps when a
// underserved tenant is waiting. The run prints each tenant's SLO view:
// p50/p99 job completion time, queueing delay, and mean slot share.
//
// The same scenario is scriptable from an INI file via the flexmr-service
// CLI (tools/flexmr_service.cpp).
#include <cstdio>

#include "cluster/presets.hpp"
#include "service/service.hpp"
#include "simcore/simulator.hpp"

int main() {
  using namespace flexmr;

  service::ServiceConfig config;
  config.tenants = {
      {"analytics", 2.0, 60.0, {"WC", "II"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kFlexMap},
      {"reporting", 1.0, 40.0, {"GR", "HR"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kFlexMap},
      {"batch", 1.0, 20.0, {"TS"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kHadoop},
  };
  config.total_jobs = 40;
  config.max_concurrent_jobs = 4;
  config.policy = mr::SharePolicy::kWeightedFair;
  config.preemption.enabled = true;
  config.params.seed = 42;

  auto cluster = cluster::presets::multitenant40(0.0);
  Simulator sim;
  service::ClusterService svc(sim, cluster, config);
  const service::ServiceResult result = svc.run();

  std::printf("policy %s  seed %llu  jobs %zu  makespan %.0fs  "
              "fairness %.3f  preemptions %llu\n\n",
              result.policy.c_str(),
              static_cast<unsigned long long>(result.seed),
              result.jobs.size(), result.makespan, result.fairness_index,
              static_cast<unsigned long long>(result.preemption_kills));
  std::printf("%-12s %6s %6s  %9s %9s  %11s %11s  %6s\n", "tenant", "w",
              "jobs", "jct p50", "jct p99", "queue p50", "queue p99",
              "share");
  for (const auto& tenant : result.tenants) {
    std::printf("%-12s %6.1f %6zu  %8.0fs %8.0fs  %10.0fs %10.0fs  %6.2f\n",
                tenant.name.c_str(), tenant.weight, tenant.jobs_completed,
                tenant.jct.empty() ? 0.0 : tenant.jct.quantile(0.5),
                tenant.jct.empty() ? 0.0 : tenant.jct.quantile(0.99),
                tenant.queue_delay.empty() ? 0.0
                                           : tenant.queue_delay.quantile(0.5),
                tenant.queue_delay.empty()
                    ? 0.0
                    : tenant.queue_delay.quantile(0.99),
                tenant.slot_share.empty() ? 0.0 : tenant.slot_share.mean());
  }
  return 0;
}
