// Scenario: elastic tasks on a *real* (threaded) MapReduce runtime.
//
// Generates a text dataset, then runs wordcount on 6 worker threads — two
// of them throttled to 25% speed — first with fixed-size tasks (the stock
// Hadoop model), then with FlexMap-style late-bound elastic tasks, and
// compares wall-clock map time, task counts, and the per-worker chunk
// distribution. Outputs are verified identical.
#include <cstdio>

#include "common/table.hpp"
#include "rt/engine.hpp"

int main() {
  using namespace flexmr;
  using namespace flexmr::rt;

  const auto dataset = Dataset::generate_text(/*num_chunks=*/384,
                                              /*chunk_bytes=*/16 * 1024,
                                              /*seed=*/11);
  std::printf("dataset: %zu chunks, %.1f MB of text\n", dataset.num_chunks(),
              static_cast<double>(dataset.total_bytes()) / 1e6);

  const std::vector<WorkerSpec> workers = {{1.0}, {1.0}, {1.0}, {1.0},
                                           {0.25}, {0.25}};
  EngineConfig config;
  config.task_startup = std::chrono::microseconds{4000};
  MapReduceEngine engine(workers, config);

  const auto fixed = engine.run_fixed(dataset, wordcount_map(),
                                      sum_reduce(), /*chunks_per_task=*/8);
  const auto elastic =
      engine.run_elastic(dataset, wordcount_map(), sum_reduce());

  if (fixed.output != elastic.output) {
    std::fprintf(stderr, "output mismatch between drivers!\n");
    return 1;
  }

  TextTable table({"driver", "map wall (s)", "tasks", "mean task size",
                   "fast-worker chunks", "slow-worker chunks"});
  auto row = [&](const char* label, const RtResult& result) {
    std::size_t fast = 0;
    std::size_t slow = 0;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      (workers[w].speed < 1.0 ? slow : fast) +=
          result.chunks_per_worker[w];
    }
    table.add_row({label, TextTable::num(result.map_wall_seconds, 3),
                   std::to_string(result.map_tasks()),
                   TextTable::num(result.mean_task_chunks(), 1),
                   std::to_string(fast), std::to_string(slow)});
  };
  row("fixed (stock)", fixed);
  row("elastic (FlexMap)", elastic);
  std::printf("%s\n", table.str().c_str());

  std::printf("outputs identical: %zu distinct words; e.g. w0 -> %lld\n",
              elastic.output.size(),
              static_cast<long long>(elastic.output.at("w0")));
  std::printf("\nElastic should finish the map phase faster: the throttled "
              "workers\nreceive fewer chunks per task while fast workers "
              "grow theirs,\nso nobody idles waiting for a straggler.\n");
  return 0;
}
